package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

type kv struct {
	Key   string
	Count int
}

func wordCountJob(cfg JobConfig) *Job[string, string, int, kv] {
	return NewJob[string, string, int, kv](cfg,
		func(line string, emit Emitter[string, int]) error {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		func(key string, values []int, emit func(kv)) error {
			total := 0
			for _, v := range values {
				total += v
			}
			emit(kv{Key: key, Count: total})
			return nil
		},
	)
}

func runWordCount(t *testing.T, cfg JobConfig, lines []string) map[string]int {
	t.Helper()
	res, err := wordCountJob(cfg).Run(context.Background(), lines)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int, len(res.Outputs))
	for _, o := range res.Outputs {
		if _, dup := out[o.Key]; dup {
			t.Fatalf("key %q reduced twice", o.Key)
		}
		out[o.Key] = o.Count
	}
	return out
}

func TestWordCount(t *testing.T) {
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	got := runWordCount(t, JobConfig{}, lines)
	want := map[string]int{
		"the": 3, "quick": 2, "brown": 1, "fox": 1, "lazy": 1, "dog": 2,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := wordCountJob(JobConfig{}).Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 0 {
		t.Errorf("outputs = %v, want empty", res.Outputs)
	}
	if res.Counters.InputRecords != 0 || res.Counters.DistinctKeys != 0 {
		t.Errorf("counters = %+v", res.Counters)
	}
}

func TestSingleWorkerMatchesParallel(t *testing.T) {
	var lines []string
	for i := 0; i < 500; i++ {
		lines = append(lines, fmt.Sprintf("w%d w%d w%d", i%7, i%13, i%29))
	}
	serial := runWordCount(t, JobConfig{Mappers: 1, Reducers: 1}, lines)
	parallel := runWordCount(t, JobConfig{Mappers: 8, Reducers: 8}, lines)
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("parallel result differs from serial")
	}
}

func TestDeterministicOutputOrder(t *testing.T) {
	var lines []string
	for i := 0; i < 300; i++ {
		lines = append(lines, fmt.Sprintf("k%d", i%50))
	}
	job := wordCountJob(JobConfig{Mappers: 4, Reducers: 4})
	first, err := job.Run(context.Background(), lines)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		res, err := job.Run(context.Background(), lines)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Outputs, first.Outputs) {
			t.Fatalf("run %d produced different output order", run)
		}
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	var lines []string
	for i := 0; i < 1000; i++ {
		lines = append(lines, "same same same")
	}
	plain, err := wordCountJob(JobConfig{Mappers: 2}).Run(context.Background(), lines)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := wordCountJob(JobConfig{Mappers: 2}).
		WithCombiner(func(_ string, values []int) []int {
			total := 0
			for _, v := range values {
				total += v
			}
			return []int{total}
		}).
		Run(context.Background(), lines)
	if err != nil {
		t.Fatal(err)
	}
	if combined.Counters.ShufflePairs >= plain.Counters.ShufflePairs {
		t.Errorf("combiner did not reduce shuffle: %d vs %d",
			combined.Counters.ShufflePairs, plain.Counters.ShufflePairs)
	}
	// Results identical.
	if len(combined.Outputs) != 1 || combined.Outputs[0].Count != 3000 {
		t.Errorf("combined outputs = %v", combined.Outputs)
	}
}

func TestCounters(t *testing.T) {
	lines := []string{"a b", "a"}
	res, err := wordCountJob(JobConfig{}).Run(context.Background(), lines)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.InputRecords != 2 {
		t.Errorf("InputRecords = %d, want 2", c.InputRecords)
	}
	if c.MapOutputPairs != 3 {
		t.Errorf("MapOutputPairs = %d, want 3", c.MapOutputPairs)
	}
	if c.DistinctKeys != 2 {
		t.Errorf("DistinctKeys = %d, want 2", c.DistinctKeys)
	}
	if c.OutputRecords != 2 {
		t.Errorf("OutputRecords = %d, want 2", c.OutputRecords)
	}
}

func TestMapError(t *testing.T) {
	sentinel := errors.New("boom")
	job := NewJob[int, int, int, int](JobConfig{Name: "failing"},
		func(in int, emit Emitter[int, int]) error {
			if in == 7 {
				return sentinel
			}
			emit(in, in)
			return nil
		},
		func(k int, vs []int, emit func(int)) error { emit(k); return nil },
	)
	inputs := make([]int, 20)
	for i := range inputs {
		inputs[i] = i
	}
	_, err := job.Run(context.Background(), inputs)
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
	if err == nil || !strings.Contains(err.Error(), "failing") {
		t.Errorf("error should carry job name: %v", err)
	}
}

func TestReduceError(t *testing.T) {
	sentinel := errors.New("reduce boom")
	job := NewJob[int, int, int, int](JobConfig{},
		func(in int, emit Emitter[int, int]) error { emit(in%3, in); return nil },
		func(k int, vs []int, emit func(int)) error {
			if k == 1 {
				return sentinel
			}
			emit(k)
			return nil
		},
	)
	inputs := []int{0, 1, 2, 3, 4, 5}
	_, err := job.Run(context.Background(), inputs)
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inputs := make([]int, 1000)
	job := NewJob[int, int, int, int](JobConfig{},
		func(in int, emit Emitter[int, int]) error { emit(in, 1); return nil },
		func(k int, vs []int, emit func(int)) error { emit(k); return nil },
	)
	if _, err := job.Run(ctx, inputs); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestPartitionBitsControlFanout(t *testing.T) {
	// All keys must appear exactly once regardless of partition count —
	// the paper's H(s,d) hash controls fan-out, not correctness.
	var lines []string
	for i := 0; i < 200; i++ {
		lines = append(lines, fmt.Sprintf("key%d", i))
	}
	for _, bits := range []int{1, 3, 5, 8} {
		got := runWordCount(t, JobConfig{PartitionBits: bits}, lines)
		if len(got) != 200 {
			t.Errorf("bits=%d: %d distinct keys, want 200", bits, len(got))
		}
	}
}

func TestCustomKeyHash(t *testing.T) {
	// A constant hash forces every key into one partition; results must
	// still be correct.
	cfg := JobConfig{KeyHash: func(any) uint64 { return 42 }}
	got := runWordCount(t, cfg, []string{"x y z", "x"})
	want := map[string]int{"x": 2, "y": 1, "z": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestReduceSeesAllValuesOfKey(t *testing.T) {
	job := NewJob[int, string, int, []int](JobConfig{Mappers: 7},
		func(in int, emit Emitter[string, int]) error {
			emit("all", in)
			return nil
		},
		func(_ string, vs []int, emit func([]int)) error {
			sorted := append([]int(nil), vs...)
			sort.Ints(sorted)
			emit(sorted)
			return nil
		},
	)
	inputs := []int{5, 3, 9, 1, 7}
	res, err := job.Run(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 || !reflect.DeepEqual(res.Outputs[0], []int{1, 3, 5, 7, 9}) {
		t.Errorf("outputs = %v", res.Outputs)
	}
}

func TestJobChaining(t *testing.T) {
	// Job 1: word count. Job 2: histogram of counts. Chained without
	// reprocessing raw input — the paper's modular job design.
	lines := []string{"a b c", "a b", "a"}
	res1, err := wordCountJob(JobConfig{}).Run(context.Background(), lines)
	if err != nil {
		t.Fatal(err)
	}
	job2 := NewJob[kv, int, int, kv](JobConfig{},
		func(in kv, emit Emitter[int, int]) error {
			emit(in.Count, 1)
			return nil
		},
		func(count int, vs []int, emit func(kv)) error {
			emit(kv{Key: fmt.Sprintf("count=%d", count), Count: len(vs)})
			return nil
		},
	)
	res2, err := job2.Run(context.Background(), res1.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, o := range res2.Outputs {
		got[o.Key] = o.Count
	}
	// counts: a=3, b=2, c=1 -> one word each with count 1, 2, 3.
	want := map[string]int{"count=1": 1, "count=2": 1, "count=3": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := JobConfig{}.withDefaults()
	if cfg.Mappers <= 0 || cfg.Reducers <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.PartitionBits != 5 {
		t.Errorf("PartitionBits = %d, want 5", cfg.PartitionBits)
	}
	big := JobConfig{PartitionBits: 30}.withDefaults()
	if big.PartitionBits != 16 {
		t.Errorf("PartitionBits clamped to %d, want 16", big.PartitionBits)
	}
}

// Property: for any input multiset, the sum of all word counts equals the
// number of words, under arbitrary worker/partition configurations.
func TestWordCountConservation(t *testing.T) {
	f := func(seed int64) bool {
		s := int(uint64(seed) % 1000003)
		words := []string{"alpha", "beta", "gamma", "delta"}
		n := s%100 + 1
		var lines []string
		total := 0
		for i := 0; i < n; i++ {
			w1 := words[(i*7+s)%4]
			w2 := words[(i*13)%4]
			lines = append(lines, w1+" "+w2)
			total += 2
		}
		cfg := JobConfig{
			Mappers:       1 + s%8,
			Reducers:      1 + s%4,
			PartitionBits: 1 + s%6,
		}
		res, err := wordCountJob(cfg).Run(context.Background(), lines)
		if err != nil {
			return false
		}
		sum := 0
		for _, o := range res.Outputs {
			sum += o.Count
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSortOutputs(t *testing.T) {
	outs := []kv{{"b", 2}, {"a", 1}, {"c", 3}}
	SortOutputs(outs, func(x, y kv) bool { return x.Key < y.Key })
	if outs[0].Key != "a" || outs[2].Key != "c" {
		t.Errorf("sorted = %v", outs)
	}
}

func BenchmarkWordCount10k(b *testing.B) {
	var lines []string
	for i := 0; i < 10000; i++ {
		lines = append(lines, fmt.Sprintf("w%d w%d w%d w%d", i%100, i%37, i%11, i%3))
	}
	job := wordCountJob(JobConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := job.Run(context.Background(), lines); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSpillMatchesInMemory(t *testing.T) {
	var lines []string
	for i := 0; i < 2000; i++ {
		lines = append(lines, fmt.Sprintf("w%d w%d", i%97, i%31))
	}
	inMem := runWordCount(t, JobConfig{Mappers: 4}, lines)
	spillDir := t.TempDir()
	spilled := runWordCount(t, JobConfig{Mappers: 4, SpillDir: spillDir, SpillThreshold: 64}, lines)
	if !reflect.DeepEqual(inMem, spilled) {
		t.Error("spilled run differs from in-memory run")
	}
	// The run's temporary spill directory must be cleaned up.
	entries, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("spill dir not cleaned: %v", entries)
	}
}

func TestSpillWithCombiner(t *testing.T) {
	var lines []string
	for i := 0; i < 1000; i++ {
		lines = append(lines, "same same")
	}
	job := wordCountJob(JobConfig{Mappers: 2, SpillDir: t.TempDir(), SpillThreshold: 50}).
		WithCombiner(func(_ string, values []int) []int {
			total := 0
			for _, v := range values {
				total += v
			}
			return []int{total}
		})
	res, err := job.Run(context.Background(), lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 || res.Outputs[0].Count != 2000 {
		t.Errorf("outputs = %v", res.Outputs)
	}
}

func TestSpillDeterministicOrder(t *testing.T) {
	var lines []string
	for i := 0; i < 500; i++ {
		lines = append(lines, fmt.Sprintf("k%d", i%40))
	}
	cfg := JobConfig{Mappers: 3, SpillDir: t.TempDir(), SpillThreshold: 32}
	job := wordCountJob(cfg)
	first, err := job.Run(context.Background(), lines)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := job.Run(context.Background(), lines)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Outputs, first.Outputs) {
			t.Fatal("spilled runs are not deterministic")
		}
	}
}

func TestSpillBadDir(t *testing.T) {
	job := wordCountJob(JobConfig{SpillDir: "/nonexistent/path/zzz"})
	if _, err := job.Run(context.Background(), []string{"a"}); err == nil {
		t.Error("expected error for unusable spill dir")
	}
}
