package mapreduce

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"baywatch/internal/faultinject"
	"baywatch/internal/mrx"
)

// Multi-process execution: the typed bridge between the generic engine
// and the untyped internal/mrx coordinator. RegisterExec names a job and
// teaches worker processes to rebuild it from an opaque parameter blob;
// RunExec shards the input, drives mrx.Run, and reassembles a Result that
// is bit-identical to the in-process engine's:
//
//   - map task w receives exactly the inputs in-process map worker w
//     would take (the same stride), and spills every pair — threshold
//     flushes plus a final flush — so the spill-file sequence equals the
//     in-process "spills, then in-memory remainder" replay order;
//   - reduce task p replays partition p's spill files in map-task order,
//     reproducing the in-process shuffle's first-emission key order;
//   - outputs are concatenated in partition order, as in the engine.
//
// Semantics that intentionally differ from the in-process engine:
// MaxFailedInputs/MaxFailedKeys budgets apply per task (each process
// counts its own), and TaskTimeout/Watchdog are not applied inside
// workers — worker liveness is the coordinator's job (heartbeats and the
// process-level watchdog in mrx), which also covers hangs the in-process
// watchdog would catch.

func init() {
	// Arm this package's fault seam inside exec'd workers whenever an
	// env-transported schedule is installed, so worker-death tests can
	// crash a worker at spill writes, replays, and task boundaries.
	mrx.RegisterFaultSink(SetFaultHook)
}

// ExecConfig enables and tunes multi-process execution. The zero value
// disables it (Enabled() == false): jobs then run in-process.
type ExecConfig struct {
	// Workers > 0 runs the job across that many exec'd worker processes.
	Workers int
	// ScratchDir holds input shards, spills, outputs, and the recovery
	// journal. A coordinator restarted with the same ScratchDir resumes
	// from its journal. Empty means a fresh temporary directory (no
	// resume across restarts).
	ScratchDir string
	// Command is the worker argv; empty means this binary re-exec'd.
	Command []string
	// Env is extra environment for worker processes (appended after the
	// inherited environment).
	Env []string
	// DisableFallback makes ErrExecUnavailable fatal instead of
	// degrading to the in-process engine.
	DisableFallback bool
	// HeartbeatEvery, StallAfter, and MaxTaskRetries pass through to
	// mrx.Options (zero values take the mrx defaults).
	HeartbeatEvery time.Duration
	StallAfter     time.Duration
	MaxTaskRetries int
	// Logf, when non-nil, receives coordinator progress notes.
	Logf func(format string, args ...any)
}

// Enabled reports whether multi-process execution is requested.
func (c ExecConfig) Enabled() bool { return c.Workers > 0 }

// RegisterExec registers a named distributable job: build reconstructs
// the job from its parameter blob inside worker processes. Call it from
// an init function (or before MaybeWorker in TestMain) so the registry is
// identical in the coordinator and in every exec'd worker. The job's
// input, key, value, and output types must be gob-encodable.
func RegisterExec[I any, K comparable, V any, O any](name string, build func(params []byte) (*Job[I, K, V, O], error)) {
	mrx.RegisterJob(name, func(h mrx.Hello) (mrx.Runner, error) {
		j, err := build(h.Params)
		if err != nil {
			return nil, err
		}
		return &execRunner[I, K, V, O]{job: j, scratch: h.ScratchDir}, nil
	})
}

// RunExec executes the job across exec'd worker processes (see the
// package comment in internal/mrx for the failure model). name must have
// been registered with RegisterExec using a build function that
// reconstructs this same job from params. Falls back to the in-process
// Run when exec is unavailable, unless ec.DisableFallback is set.
func (j *Job[I, K, V, O]) RunExec(ctx context.Context, name string, params []byte, ec ExecConfig, inputs []I) (*Result[O], error) {
	if !ec.Enabled() {
		return j.Run(ctx, inputs)
	}
	scratch := ec.ScratchDir
	if scratch == "" {
		dir, err := os.MkdirTemp("", "baywatch-mrx-")
		if err != nil {
			return nil, fmt.Errorf("%s: scratch dir: %w", j.name(), err)
		}
		scratch = dir
	}
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		return nil, fmt.Errorf("%s: scratch dir: %w", j.name(), err)
	}

	// Shard the input exactly as Run strides it across map workers, so
	// map task w reproduces in-process worker w's share byte for byte.
	nParts := 1 << j.cfg.PartitionBits
	inDir := filepath.Join(scratch, "inputs")
	if err := os.MkdirAll(inDir, 0o755); err != nil {
		return nil, fmt.Errorf("%s: input dir: %w", j.name(), err)
	}
	shardPaths := make([]string, j.cfg.Mappers)
	for w := 0; w < j.cfg.Mappers; w++ {
		var shard []I
		for i := w; i < len(inputs); i += j.cfg.Mappers {
			shard = append(shard, inputs[i])
		}
		path := filepath.Join(inDir, fmt.Sprintf("input-%03d.gob", w))
		if err := writeRecordsFile(path, shard); err != nil {
			return nil, fmt.Errorf("%s: %w", j.name(), err)
		}
		shardPaths[w] = path
	}

	res, err := mrx.Run(ctx, mrx.Options{
		Job:            name,
		Params:         params,
		ScratchDir:     scratch,
		Inputs:         shardPaths,
		Partitions:     nParts,
		Workers:        ec.Workers,
		Command:        ec.Command,
		Env:            ec.Env,
		HeartbeatEvery: ec.HeartbeatEvery,
		StallAfter:     ec.StallAfter,
		MaxTaskRetries: ec.MaxTaskRetries,
		Logf:           ec.Logf,
	})
	if err != nil {
		if errors.Is(err, mrx.ErrExecUnavailable) && !ec.DisableFallback {
			if ec.Logf != nil {
				ec.Logf("%s: %v; degrading to in-process execution", j.name(), err)
			}
			os.RemoveAll(scratch)
			return j.Run(ctx, inputs)
		}
		return nil, fmt.Errorf("%s: distributed run: %w", j.name(), err)
	}

	out := &Result[O]{}
	for _, blob := range res.MapCounters {
		c, derr := decodeCounters(blob)
		if derr != nil {
			return nil, fmt.Errorf("%s: %w", j.name(), derr)
		}
		out.Counters.add(c)
	}
	for _, blob := range res.ReduceCounters {
		if blob == nil {
			continue
		}
		c, derr := decodeCounters(blob)
		if derr != nil {
			return nil, fmt.Errorf("%s: %w", j.name(), derr)
		}
		out.Counters.add(c)
	}
	for p := 0; p < nParts; p++ {
		if res.ReduceOutputs[p] == "" {
			continue
		}
		recs, rerr := readRecordsFile[O](res.ReduceOutputs[p])
		if rerr != nil {
			return nil, fmt.Errorf("%s: partition %d output: %w", j.name(), p, rerr)
		}
		out.Outputs = append(out.Outputs, recs...)
	}
	out.Counters.OutputRecords = int64(len(out.Outputs))
	out.Counters.CorruptSpills += int64(res.Stats.CorruptSpills)
	out.Counters.ShardReruns += int64(res.Stats.ShardReruns)
	// The run is complete; its scratch must not survive to be mistaken
	// for resumable state by the next job pointed at the same directory.
	os.RemoveAll(scratch)
	return out, nil
}

// add accumulates another task's counter deltas.
func (c *Counters) add(o Counters) {
	c.InputRecords += o.InputRecords
	c.MapOutputPairs += o.MapOutputPairs
	c.ShufflePairs += o.ShufflePairs
	c.DistinctKeys += o.DistinctKeys
	c.OutputRecords += o.OutputRecords
	c.Retries += o.Retries
	c.FailedInputs += o.FailedInputs
	c.FailedKeys += o.FailedKeys
	c.CorruptSpills += o.CorruptSpills
	c.ShardReruns += o.ShardReruns
}

// execRunner executes this job's tasks inside a worker process.
type execRunner[I any, K comparable, V any, O any] struct {
	job     *Job[I, K, V, O]
	scratch string
}

// RunTask implements mrx.Runner.
func (r *execRunner[I, K, V, O]) RunTask(spec mrx.TaskSpec) (mrx.TaskResult, error) {
	switch spec.Kind {
	case mrx.TaskMap:
		return r.mapTask(spec)
	case mrx.TaskReduce:
		return r.reduceTask(spec)
	default:
		return mrx.TaskResult{}, &mrx.FinalError{Err: fmt.Errorf("mapreduce: unknown task kind %v", spec.Kind)}
	}
}

// mapTask runs one map shard: consume the shard's input file, emit into
// per-partition groups with first-emission key order, spill at the
// threshold and once more at the end, so every pair reaches disk in the
// order the in-process shuffle would see it.
func (r *execRunner[I, K, V, O]) mapTask(spec mrx.TaskSpec) (mrx.TaskResult, error) {
	j := r.job
	cfg := j.cfg
	inputs, err := readRecordsFile[I](spec.Inputs[0])
	if err != nil {
		return mrx.TaskResult{}, fmt.Errorf("%s: map shard %d input: %w", j.name(), spec.Index, err)
	}
	nParts := 1 << cfg.PartitionBits
	dir := filepath.Join(r.scratch, fmt.Sprintf("map-%03d", spec.Index))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return mrx.TaskResult{}, fmt.Errorf("%s: map shard %d: %w", j.name(), spec.Index, err)
	}
	sw := newSpillWriter[K, V](dir, spec.Index, nParts)
	groups := make([]map[K][]V, nParts)
	order := make([][]K, nParts)
	for p := range groups {
		groups[p] = make(map[K][]V)
	}

	var c Counters
	var buffered int64
	emit := func(key K, value V) {
		p := int(cfg.KeyHash(key) % uint64(nParts))
		if _, seen := groups[p][key]; !seen {
			order[p] = append(order[p], key)
		}
		groups[p][key] = append(groups[p][key], value)
		c.MapOutputPairs++
		buffered++
	}
	applyCombiner := func() {
		if j.combine == nil {
			return
		}
		for p := range groups {
			for k, vs := range groups[p] {
				groups[p][k] = j.combine(k, vs)
			}
		}
	}
	runMap := func(in I, em Emitter[K, V]) (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("map panic: %v", rec)
			}
		}()
		if err := faultCheck(faultinject.PointMapreduceMapTask); err != nil {
			return err
		}
		return j.mapFn(in, em)
	}

	type stagedPair struct {
		key   K
		value V
	}
	var staged []stagedPair
	for i, in := range inputs {
		c.InputRecords++
		// The shard holds in-process worker Index's stride, so input i's
		// global index (used for deterministic retry jitter, matching the
		// engine) is Index + i*Mappers.
		gi := spec.Index + i*cfg.Mappers
		var err error
		for attempt := 0; ; attempt++ {
			staged = staged[:0]
			err = runMap(in, func(k K, v V) {
				staged = append(staged, stagedPair{key: k, value: v})
			})
			if err == nil {
				for _, sp := range staged {
					emit(sp.key, sp.value)
				}
				break
			}
			if attempt >= cfg.MaxRetries || finalFailure(err) {
				break
			}
			c.Retries++
			time.Sleep(retryDelay(cfg, j.name(), gi, attempt+1))
		}
		if err != nil {
			if c.FailedInputs++; c.FailedInputs <= int64(cfg.MaxFailedInputs) {
				continue // poisoned record skipped, within the per-task budget
			}
			return mrx.TaskResult{}, fmt.Errorf("%s: map input %d: %w", j.name(), gi, err)
		}
		if buffered >= int64(cfg.SpillThreshold) {
			applyCombiner()
			if err := sw.flush(groups, order); err != nil {
				return mrx.TaskResult{}, fmt.Errorf("%s: %w", j.name(), err)
			}
			buffered = 0
		}
	}
	applyCombiner()
	if err := sw.flush(groups, order); err != nil {
		return mrx.TaskResult{}, fmt.Errorf("%s: %w", j.name(), err)
	}

	var refs []mrx.SpillRef
	for p := 0; p < nParts; p++ {
		for _, path := range sw.files[p] {
			refs = append(refs, mrx.SpillRef{Partition: p, Path: path})
		}
	}
	blob, err := encodeCounters(c)
	if err != nil {
		return mrx.TaskResult{}, err
	}
	return mrx.TaskResult{Spills: refs, Counters: blob}, nil
}

// reduceTask reduces one partition: replay the spill files in map-task
// order (reporting a corrupt file to the coordinator for quarantine and
// producer re-execution), run the reduce function per key in
// first-emission order, and write the partition's output file.
func (r *execRunner[I, K, V, O]) reduceTask(spec mrx.TaskSpec) (mrx.TaskResult, error) {
	j := r.job
	cfg := j.cfg
	p := spec.Index
	group := make(map[K][]V)
	var order []K
	for _, path := range spec.Inputs {
		if err := replaySpill(path, group, &order); err != nil {
			if errors.Is(err, ErrSpillCorrupt) {
				return mrx.TaskResult{}, &mrx.CorruptInputError{Path: path, Err: err}
			}
			return mrx.TaskResult{}, fmt.Errorf("%s: reduce partition %d: %w", j.name(), p, err)
		}
	}

	var c Counters
	for _, vs := range group {
		c.ShufflePairs += int64(len(vs))
	}
	c.DistinctKeys = int64(len(group))

	runReduce := func(k K, vs []V, em func(O)) (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("reduce panic: %v", rec)
			}
		}()
		if err := faultCheck(faultinject.PointMapreduceReduceTask); err != nil {
			return err
		}
		return j.reduce(k, vs, em)
	}

	var outs []O
	for ki, k := range order {
		var kouts []O
		var err error
		for attempt := 0; ; attempt++ {
			kouts = nil
			err = runReduce(k, group[k], func(o O) { kouts = append(kouts, o) })
			if err == nil || attempt >= cfg.MaxRetries || finalFailure(err) {
				break
			}
			c.Retries++
			time.Sleep(retryDelay(cfg, j.name(), p<<16|ki, attempt+1))
		}
		if err != nil {
			if c.FailedKeys++; c.FailedKeys <= int64(cfg.MaxFailedKeys) {
				continue // key dropped, within the per-task budget
			}
			return mrx.TaskResult{}, fmt.Errorf("%s: reduce key %v: %w", j.name(), k, err)
		}
		outs = append(outs, kouts...)
	}
	c.OutputRecords = int64(len(outs))
	if err := writeRecordsFile(spec.Output, outs); err != nil {
		return mrx.TaskResult{}, fmt.Errorf("%s: %w", j.name(), err)
	}
	blob, err := encodeCounters(c)
	if err != nil {
		return mrx.TaskResult{}, err
	}
	return mrx.TaskResult{Counters: blob}, nil
}

func encodeCounters(c Counters) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("mapreduce: encode counters: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeCounters(blob []byte) (Counters, error) {
	var c Counters
	if len(blob) == 0 {
		return c, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&c); err != nil {
		return c, fmt.Errorf("mapreduce: decode counters: %w", err)
	}
	return c, nil
}

// Record files carry input shards and partition outputs across process
// boundaries with the same footer discipline as spill files: gob records
// followed by magic | count | payloadLen | crc32, so a torn write is
// detected before any record is trusted.

func writeRecordsFile[T any](path string, recs []T) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mapreduce: create records file: %w", err)
	}
	crc := crc32.NewIEEE()
	cw := &countingWriter{w: io.MultiWriter(f, crc)}
	enc := gob.NewEncoder(cw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			f.Close()
			return fmt.Errorf("mapreduce: encode record: %w", err)
		}
	}
	var footer [spillFooterLen]byte
	copy(footer[:], spillMagic)
	binary.LittleEndian.PutUint32(footer[4:], uint32(len(recs)))
	binary.LittleEndian.PutUint64(footer[8:], uint64(cw.n))
	binary.LittleEndian.PutUint32(footer[16:], crc.Sum32())
	if _, err := f.Write(footer[:]); err != nil {
		f.Close()
		return fmt.Errorf("mapreduce: write records footer: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("mapreduce: close records file: %w", err)
	}
	return nil
}

func readRecordsFile[T any](path string) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: open records file: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: stat records file: %w", err)
	}
	if fi.Size() < spillFooterLen {
		return nil, fmt.Errorf("%w: %s: %d bytes, shorter than footer", ErrSpillCorrupt, path, fi.Size())
	}
	var footer [spillFooterLen]byte
	if _, err := f.ReadAt(footer[:], fi.Size()-spillFooterLen); err != nil {
		return nil, fmt.Errorf("mapreduce: read records footer: %w", err)
	}
	if string(footer[:4]) != spillMagic {
		return nil, fmt.Errorf("%w: %s: bad footer magic", ErrSpillCorrupt, path)
	}
	count := binary.LittleEndian.Uint32(footer[4:])
	payloadLen := binary.LittleEndian.Uint64(footer[8:])
	wantCRC := binary.LittleEndian.Uint32(footer[16:])
	if payloadLen != uint64(fi.Size()-spillFooterLen) {
		return nil, fmt.Errorf("%w: %s: payload length %d does not match file size %d",
			ErrSpillCorrupt, path, payloadLen, fi.Size())
	}
	crc := crc32.NewIEEE()
	tee := io.TeeReader(io.LimitReader(f, int64(payloadLen)), crc)
	dec := gob.NewDecoder(tee)
	recs := make([]T, 0, count)
	for i := uint32(0); i < count; i++ {
		var rec T
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("%w: %s: decode record %d/%d: %v", ErrSpillCorrupt, path, i, count, err)
		}
		recs = append(recs, rec)
	}
	if _, err := io.Copy(io.Discard, tee); err != nil {
		return nil, fmt.Errorf("mapreduce: drain records file: %w", err)
	}
	if got := crc.Sum32(); got != wantCRC {
		return nil, fmt.Errorf("%w: %s: checksum mismatch (got %08x, want %08x)", ErrSpillCorrupt, path, got, wantCRC)
	}
	return recs, nil
}
