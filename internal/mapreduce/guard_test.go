package mapreduce

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"baywatch/internal/faultinject"
	"baywatch/internal/guard"
)

// identityJob maps each int to itself and reduces by summing; handy for
// asserting which inputs survived.
func identityJob(cfg JobConfig) *Job[int, int, int, int] {
	return NewJob[int, int, int, int](cfg,
		func(i int, emit Emitter[int, int]) error { emit(i, i); return nil },
		func(k int, vs []int, emit func(int)) error { emit(k); return nil },
	)
}

func sortedInts(t *testing.T, res *Result[int]) []int {
	t.Helper()
	out := append([]int(nil), res.Outputs...)
	SortOutputs(out, func(a, b int) bool { return a < b })
	return out
}

func waitGoroutines(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > limit {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, want <= %d", runtime.NumGoroutine(), limit)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTaskTimeoutSkipsHungInput(t *testing.T) {
	baseline := runtime.NumGoroutine()
	release := make(chan struct{})
	job := NewJob[int, int, int, int](
		JobConfig{Name: "hung-map", Mappers: 2, Reducers: 2,
			TaskTimeout: 50 * time.Millisecond, MaxFailedInputs: 1},
		func(i int, emit Emitter[int, int]) error {
			if i == 3 {
				<-release // wedged far beyond the task deadline
			}
			emit(i, i)
			return nil
		},
		func(k int, vs []int, emit func(int)) error { emit(k); return nil },
	)
	start := time.Now()
	res, err := job.Run(context.Background(), []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("job not bounded: took %v", elapsed)
	}
	if got := sortedInts(t, res); len(got) != 4 || got[0] != 1 || got[3] != 5 {
		t.Fatalf("outputs = %v, want the 4 non-hung inputs", got)
	}
	if res.Counters.FailedInputs != 1 {
		t.Fatalf("FailedInputs = %d, want 1", res.Counters.FailedInputs)
	}
	close(release)
	waitGoroutines(t, baseline)
}

func TestWatchdogCancelsStalledMapTask(t *testing.T) {
	baseline := runtime.NumGoroutine()
	sched := faultinject.New(0)
	sched.HangAt(faultinject.PointMapreduceMapTask, 2)
	SetFaultHook(sched.Hook())
	t.Cleanup(func() { SetFaultHook(nil); sched.ReleaseHangs() })

	wd := guard.NewWatchdog(50*time.Millisecond, 5*time.Millisecond)
	defer wd.Stop()
	job := identityJob(JobConfig{Name: "stalled-map", Mappers: 1, Reducers: 1,
		Watchdog: wd, MaxFailedInputs: 1})
	res, err := job.Run(context.Background(), []int{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if res.Counters.FailedInputs != 1 {
		t.Fatalf("FailedInputs = %d, want 1", res.Counters.FailedInputs)
	}
	if len(res.Outputs) != 3 {
		t.Fatalf("outputs = %v, want 3 surviving inputs", res.Outputs)
	}
	stalls := wd.Stalls()
	if len(stalls) == 0 || !strings.HasPrefix(stalls[0].Worker, "stalled-map/map-") {
		t.Fatalf("watchdog recorded no map stall: %+v", stalls)
	}
	sched.ReleaseHangs()
	wd.Stop() // idempotent; stop before the leak check so the monitor exits
	waitGoroutines(t, baseline)
}

func TestWatchdogCancelsStalledReduceTask(t *testing.T) {
	baseline := runtime.NumGoroutine()
	sched := faultinject.New(0)
	sched.HangAt(faultinject.PointMapreduceReduceTask, 2)
	SetFaultHook(sched.Hook())
	t.Cleanup(func() { SetFaultHook(nil); sched.ReleaseHangs() })

	wd := guard.NewWatchdog(50*time.Millisecond, 5*time.Millisecond)
	defer wd.Stop()
	job := identityJob(JobConfig{Name: "stalled-reduce", Mappers: 1, Reducers: 1,
		Watchdog: wd, MaxFailedKeys: 1})
	res, err := job.Run(context.Background(), []int{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if res.Counters.FailedKeys != 1 {
		t.Fatalf("FailedKeys = %d, want 1", res.Counters.FailedKeys)
	}
	if len(res.Outputs) != 3 {
		t.Fatalf("outputs = %v, want 3 surviving keys", res.Outputs)
	}
	sched.ReleaseHangs()
	wd.Stop()
	waitGoroutines(t, baseline)
}

func TestReduceFailedKeysBudget(t *testing.T) {
	job := NewJob[int, int, int, int](
		JobConfig{Name: "bad-key", MaxFailedKeys: 1},
		func(i int, emit Emitter[int, int]) error { emit(i, i); return nil },
		func(k int, vs []int, emit func(int)) error {
			if k == 2 {
				return errors.New("poisoned key")
			}
			emit(k)
			return nil
		},
	)
	res, err := job.Run(context.Background(), []int{1, 2, 3})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if got := sortedInts(t, res); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("outputs = %v, want [1 3]", got)
	}
	if res.Counters.FailedKeys != 1 {
		t.Fatalf("FailedKeys = %d, want 1", res.Counters.FailedKeys)
	}
}

func TestReduceFailureOverBudgetAborts(t *testing.T) {
	job := NewJob[int, int, int, int](
		JobConfig{Name: "bad-keys"},
		func(i int, emit Emitter[int, int]) error { emit(i, i); return nil },
		func(k int, vs []int, emit func(int)) error {
			if k%2 == 0 {
				return errors.New("poisoned key")
			}
			emit(k)
			return nil
		},
	)
	if _, err := job.Run(context.Background(), []int{1, 2, 3}); err == nil {
		t.Fatal("zero budget must abort on first reduce failure")
	}
}

func TestRetryBackoffDelaysAndSucceeds(t *testing.T) {
	var attempts atomic.Int64
	job := NewJob[int, int, int, int](
		JobConfig{Name: "flaky", Mappers: 1, MaxRetries: 3, Backoff: 30 * time.Millisecond},
		func(i int, emit Emitter[int, int]) error {
			if i == 1 && attempts.Add(1) <= 2 {
				return errors.New("transient")
			}
			emit(i, i)
			return nil
		},
		func(k int, vs []int, emit func(int)) error { emit(k); return nil },
	)
	start := time.Now()
	res, err := job.Run(context.Background(), []int{1, 2})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	elapsed := time.Since(start)
	if res.Counters.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", res.Counters.Retries)
	}
	// Two retries with base 30ms back off at least 15ms (attempt 1 jitter
	// floor) + 30ms (attempt 2 floor at doubled delay) = 45ms.
	if elapsed < 45*time.Millisecond {
		t.Fatalf("retries not backed off: elapsed %v", elapsed)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("outputs = %v", res.Outputs)
	}
}

func TestRetryDelayDeterministicAndCapped(t *testing.T) {
	cfg := JobConfig{Backoff: 10 * time.Millisecond}.withDefaults()
	a := retryDelay(cfg, "job", 7, 3)
	b := retryDelay(cfg, "job", 7, 3)
	if a != b {
		t.Fatalf("jitter not deterministic: %v vs %v", a, b)
	}
	want := 40 * time.Millisecond // 10ms doubled twice
	if a < want/2 || a >= want {
		t.Fatalf("delay %v outside [%v, %v)", a, want/2, want)
	}
	// Far attempts cap at MaxBackoff.
	far := retryDelay(cfg, "job", 7, 30)
	if far >= cfg.MaxBackoff {
		t.Fatalf("delay %v not capped below MaxBackoff %v", far, cfg.MaxBackoff)
	}
	if retryDelay(JobConfig{}.withDefaults(), "job", 1, 1) != 0 {
		t.Fatal("no backoff configured must mean zero delay")
	}
}

func TestCancellationMidRunReturnsPromptly(t *testing.T) {
	baseline := runtime.NumGoroutine()
	sched := faultinject.New(0)
	sched.HangAt(faultinject.PointMapreduceMapTask, 1)
	SetFaultHook(sched.Hook())
	t.Cleanup(func() { SetFaultHook(nil); sched.ReleaseHangs() })

	// No TaskTimeout: promptness must come purely from cancellation
	// propagating through the guarded path (watchdog present but with a
	// very long stall bound, so it never fires).
	wd := guard.NewWatchdog(time.Hour, time.Millisecond)
	defer wd.Stop()
	job := identityJob(JobConfig{Name: "cancelled", Mappers: 1, Reducers: 1, Watchdog: wd})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := job.Run(ctx, []int{1, 2, 3})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sched.ActiveHangs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hang never engaged")
		}
		time.Sleep(2 * time.Millisecond)
	}
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Run did not return after cancellation (waited %v)", time.Since(start))
	}
	sched.ReleaseHangs()
	wd.Stop()
	waitGoroutines(t, baseline)
}

func TestTaskTimeoutNotRetried(t *testing.T) {
	baseline := runtime.NumGoroutine()
	release := make(chan struct{})
	var calls atomic.Int64
	job := NewJob[int, int, int, int](
		JobConfig{Name: "no-retry-on-timeout", Mappers: 1, MaxRetries: 5,
			TaskTimeout: 40 * time.Millisecond, MaxFailedInputs: 1},
		func(i int, emit Emitter[int, int]) error {
			if i == 1 {
				calls.Add(1)
				<-release
			}
			emit(i, i)
			return nil
		},
		func(k int, vs []int, emit func(int)) error { emit(k); return nil },
	)
	res, err := job.Run(context.Background(), []int{1, 2})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("hung input called %d times, want 1 (timeouts must not retry)", got)
	}
	if res.Counters.Retries != 0 || res.Counters.FailedInputs != 1 {
		t.Fatalf("counters = %+v", res.Counters)
	}
	close(release)
	waitGoroutines(t, baseline)
}
