package mapreduce

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"baywatch/internal/faultinject"
	"baywatch/internal/mrx"
)

// TestMain registers the distributable test jobs and then lets the test
// binary serve as a worker process when a coordinator test re-execs it.
// Registration must precede MaybeWorker so exec'd workers can resolve
// the jobs.
func TestMain(m *testing.M) {
	RegisterExec[string, string, int, kv](execTestJob, buildExecWordCount)
	mrx.MaybeWorker()
	os.Exit(m.Run())
}

const execTestJob = "mapreduce.test.wordcount"

// execParams is the serializable construction recipe both sides share:
// the coordinator encodes it into RunExec's params blob, workers decode
// it in buildExecWordCount. Coordinator and workers must build identical
// jobs or the differential guarantees are void.
type execParams struct {
	Mappers        int
	Reducers       int
	PartitionBits  int
	SpillThreshold int
	MaxRetries     int
	Combiner       bool
	// SpillDir is only ever set on in-process baseline runs (workers
	// always spill into the coordinator's scratch regardless).
	SpillDir string
}

func (p execParams) cfg() JobConfig {
	return JobConfig{
		Name:           "exec-wordcount",
		Mappers:        p.Mappers,
		Reducers:       p.Reducers,
		PartitionBits:  p.PartitionBits,
		SpillThreshold: p.SpillThreshold,
		MaxRetries:     p.MaxRetries,
		SpillDir:       p.SpillDir,
	}
}

func (p execParams) job() *Job[string, string, int, kv] {
	j := wordCountJob(p.cfg())
	if p.Combiner {
		j = j.WithCombiner(func(key string, values []int) []int {
			total := 0
			for _, v := range values {
				total += v
			}
			return []int{total}
		})
	}
	return j
}

func buildExecWordCount(params []byte) (*Job[string, string, int, kv], error) {
	var p execParams
	if err := gob.NewDecoder(bytes.NewReader(params)).Decode(&p); err != nil {
		return nil, fmt.Errorf("exec wordcount params: %w", err)
	}
	return p.job(), nil
}

func encodeExecParams(t *testing.T, p execParams) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// execTestLines generates deterministic word-count input.
func execTestLines(n int) []string {
	words := []string{"beacon", "host", "dns", "c2", "ping", "poll", "jitter", "tick"}
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("%s %s %s",
			words[i%len(words)], words[(i*3+1)%len(words)], words[(i*7+2)%len(words)])
	}
	return lines
}

func baseExecParams() execParams {
	return execParams{Mappers: 3, Reducers: 2, PartitionBits: 2, SpillThreshold: 4}
}

func fastExec(workers int) ExecConfig {
	return ExecConfig{
		Workers:         workers,
		DisableFallback: true,
		HeartbeatEvery:  50 * time.Millisecond,
	}
}

// TestExecDifferential pins the tentpole guarantee: the distributed run
// produces a bit-identical Result — outputs, order, and counters — to the
// in-process engine.
func TestExecDifferential(t *testing.T) {
	for _, combiner := range []bool{false, true} {
		t.Run(fmt.Sprintf("combiner=%v", combiner), func(t *testing.T) {
			p := baseExecParams()
			p.Combiner = combiner
			inputs := execTestLines(40)
			// The distributed path always spills (spill files ARE the
			// shuffle handoff), so the combiner runs once per flush. Give
			// the in-process baseline the same spill behavior: flush
			// boundaries are a pure function of input order and
			// SpillThreshold, so every counter must then match exactly.
			base := p
			base.SpillDir = t.TempDir()
			want, err := base.job().Run(context.Background(), inputs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.job().RunExec(context.Background(), execTestJob,
				encodeExecParams(t, p), fastExec(3), inputs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("distributed result differs from in-process:\ngot  %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestExecEmptyInput(t *testing.T) {
	p := baseExecParams()
	want, err := p.job().Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.job().RunExec(context.Background(), execTestJob,
		encodeExecParams(t, p), fastExec(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("empty-input distributed result differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestExecWorkerKillEveryPointConverges kills worker 0 at every
// registered worker-side fault point, one run per point, and asserts the
// job converges to the exact in-process Result every time — the ISSUE's
// acceptance criterion for worker-death recovery.
func TestExecWorkerKillEveryPointConverges(t *testing.T) {
	points := []faultinject.Point{
		faultinject.PointMrxWorkerTask,
		faultinject.PointMrxWorkerAck,
		faultinject.PointMrxWorkerHeartbeat,
		faultinject.PointMapreduceMapTask,
		faultinject.PointMapreduceReduceTask,
		faultinject.PointMapreduceSpillWrite,
		faultinject.PointMapreduceSpillReplay,
	}
	p := baseExecParams()
	inputs := execTestLines(30)
	want, err := p.job().Run(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		t.Run(string(pt), func(t *testing.T) {
			enc, err := faultinject.Schedule{
				Worker: 0,
				Rules:  []faultinject.EnvRule{{Point: string(pt), From: 1, Crash: true}},
			}.Encode()
			if err != nil {
				t.Fatal(err)
			}
			ec := fastExec(3)
			ec.Env = []string{faultinject.EnvScheduleVar + "=" + enc}
			got, err := p.job().RunExec(context.Background(), execTestJob,
				encodeExecParams(t, p), ec, inputs)
			if err != nil {
				t.Fatalf("job did not survive worker kill at %s: %v", pt, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("kill at %s: result diverged:\ngot  %+v\nwant %+v", pt, got, want)
			}
		})
	}
}

// TestExecCoordinatorCrashEveryHitResumes crashes the coordinator at
// every coordinator-side fault-point traversal in turn (spawn, assign,
// complete, shuffle barrier, journal write), restarts it on the same
// scratch directory, and asserts each resumed run converges to the
// in-process Result — the ISSUE's crash-safe-coordinator criterion.
func TestExecCoordinatorCrashEveryHitResumes(t *testing.T) {
	p := baseExecParams()
	inputs := execTestLines(24)
	want, err := p.job().Run(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}

	// Count the coordinator-side traversals of a clean distributed run.
	probe := faultinject.New(0)
	mrx.SetFaultHook(probe.Hook())
	got, err := p.job().RunExec(context.Background(), execTestJob,
		encodeExecParams(t, p), fastExec(2), inputs)
	mrx.SetFaultHook(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("clean distributed run diverged:\ngot  %+v\nwant %+v", got, want)
	}
	total := probe.TotalHits()
	if total < 5 {
		t.Fatalf("probe counted only %d coordinator fault-point hits", total)
	}

	for n := 1; n <= total; n++ {
		n := n
		t.Run(fmt.Sprintf("hit-%02d", n), func(t *testing.T) {
			scratch := t.TempDir()
			ec := fastExec(2)
			ec.ScratchDir = scratch
			s := faultinject.New(0)
			s.CrashAtGlobalHit(n)
			mrx.SetFaultHook(s.Hook())
			crash, runErr := faultinject.Run(func() error {
				_, err := p.job().RunExec(context.Background(), execTestJob,
					encodeExecParams(t, p), ec, inputs)
				return err
			})
			mrx.SetFaultHook(nil)
			if crash == nil && runErr == nil {
				// Scheduling drift let this run finish before hit n; the
				// completed run already removed its scratch, nothing to
				// resume.
				return
			}
			got, err := p.job().RunExec(context.Background(), execTestJob,
				encodeExecParams(t, p), ec, inputs)
			if err != nil {
				t.Fatalf("resume after crash at hit %d failed: %v", n, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("resume after crash at hit %d diverged:\ngot  %+v\nwant %+v", n, got, want)
			}
		})
	}
}

// TestExecResumeSkipsCompletedTasks restarts a mid-job-crashed
// coordinator and proves journalled map tasks are not re-executed: their
// spill files' modification times do not change across the resumed run.
func TestExecResumeSkipsCompletedTasks(t *testing.T) {
	p := baseExecParams()
	inputs := execTestLines(24)
	scratch := t.TempDir()
	ec := fastExec(2)
	ec.ScratchDir = scratch

	// Crash at the shuffle barrier: every map task is complete and
	// journalled, no reduce has run.
	s := faultinject.New(0)
	s.CrashAt(faultinject.PointMrxShuffleBarrier, 1)
	mrx.SetFaultHook(s.Hook())
	crash, _ := faultinject.Run(func() error {
		_, err := p.job().RunExec(context.Background(), execTestJob,
			encodeExecParams(t, p), ec, inputs)
		return err
	})
	mrx.SetFaultHook(nil)
	if crash == nil {
		t.Fatal("scripted coordinator crash did not fire")
	}

	spills, err := filepath.Glob(filepath.Join(scratch, "map-*", "spill-*.gob"))
	if err != nil || len(spills) == 0 {
		t.Fatalf("no spill files survived the crash (err=%v)", err)
	}
	sort.Strings(spills)
	before := make(map[string]time.Time, len(spills))
	for _, path := range spills {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		before[path] = fi.ModTime()
	}

	want, err := p.job().Run(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}

	// RunExec removes its scratch once the job succeeds, so snapshot the
	// spill mtimes mid-resume — at the shuffle barrier, when every map is
	// done but the scratch still exists.
	during := make(map[string]time.Time)
	var snapErr error
	mrx.SetFaultHook(func(point string) error {
		if point == string(faultinject.PointMrxShuffleBarrier) && len(during) == 0 {
			for path := range before {
				fi, err := os.Stat(path)
				if err != nil {
					snapErr = err
					return nil
				}
				during[path] = fi.ModTime()
			}
		}
		return nil
	})
	defer mrx.SetFaultHook(nil)

	got, err := p.job().RunExec(context.Background(), execTestJob,
		encodeExecParams(t, p), ec, inputs)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed result diverged:\ngot  %+v\nwant %+v", got, want)
	}
	if snapErr != nil {
		t.Fatalf("journalled spill vanished during resume: %v", snapErr)
	}
	if len(during) != len(before) {
		t.Fatalf("mtime snapshot incomplete: %d/%d spills seen at the barrier", len(during), len(before))
	}
	for path, mtime := range before {
		if !during[path].Equal(mtime) {
			t.Fatalf("journalled map task re-ran during resume: %s was rewritten", path)
		}
	}
}

// TestExecDistributedCorruptSpillRecovered truncates one spill file at
// the shuffle barrier (maps done, reduces not yet assigned): the reduce
// replay reports it, the coordinator quarantines the file and re-executes
// the producing map shard, and the job converges.
func TestExecDistributedCorruptSpillRecovered(t *testing.T) {
	p := baseExecParams()
	inputs := execTestLines(30)
	want, err := p.job().Run(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}

	scratch := t.TempDir()
	ec := fastExec(2)
	ec.ScratchDir = scratch
	var corrupted string
	mrx.SetFaultHook(func(point string) error {
		if point == string(faultinject.PointMrxShuffleBarrier) && corrupted == "" {
			paths, _ := filepath.Glob(filepath.Join(scratch, "map-*", "spill-*.gob"))
			sort.Strings(paths)
			if len(paths) > 0 {
				corrupted = paths[0]
				fi, err := os.Stat(corrupted)
				if err == nil {
					os.Truncate(corrupted, fi.Size()-5)
				}
			}
		}
		return nil
	})
	defer mrx.SetFaultHook(nil)

	got, err := p.job().RunExec(context.Background(), execTestJob,
		encodeExecParams(t, p), ec, inputs)
	if err != nil {
		t.Fatalf("distributed corruption not recovered: %v", err)
	}
	if corrupted == "" {
		t.Fatal("no spill file was corrupted; test exercised nothing")
	}
	if got.Counters.CorruptSpills != 1 || got.Counters.ShardReruns != 1 {
		t.Fatalf("recovery counters: CorruptSpills=%d ShardReruns=%d, want 1/1",
			got.Counters.CorruptSpills, got.Counters.ShardReruns)
	}
	got.Counters.CorruptSpills, got.Counters.ShardReruns = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered distributed result diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestExecDistributedPersistentCorruptionFails re-corrupts the spill file
// every time a task is assigned, so the one bounded shard re-execution
// cannot help: the job must fail, not loop.
func TestExecDistributedPersistentCorruptionFails(t *testing.T) {
	p := baseExecParams()
	inputs := execTestLines(30)
	scratch := t.TempDir()
	ec := fastExec(2)
	ec.ScratchDir = scratch
	var target string
	mrx.SetFaultHook(func(point string) error {
		switch point {
		case string(faultinject.PointMrxShuffleBarrier):
			paths, _ := filepath.Glob(filepath.Join(scratch, "map-*", "spill-*.gob"))
			sort.Strings(paths)
			if len(paths) > 0 {
				target = paths[0]
			}
		}
		if target != "" {
			if fi, err := os.Stat(target); err == nil && fi.Size() > 10 {
				os.Truncate(target, 10)
			}
		}
		return nil
	})
	defer mrx.SetFaultHook(nil)

	_, err := p.job().RunExec(context.Background(), execTestJob,
		encodeExecParams(t, p), ec, inputs)
	if err == nil {
		t.Fatal("persistently corrupt spill did not fail the distributed job")
	}
	if !strings.Contains(err.Error(), "corrupted its spills again") {
		t.Fatalf("err = %v, want the bounded-rerun failure", err)
	}
}

// TestExecFallback: when no worker can be spawned, RunExec degrades to
// the in-process engine (same Result) unless fallback is disabled.
func TestExecFallback(t *testing.T) {
	p := baseExecParams()
	inputs := execTestLines(20)
	want, err := p.job().Run(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}

	s := faultinject.New(0)
	s.FailTransient(faultinject.PointMrxSpawn, 1, 99, errors.New("exec disabled in this environment"))
	mrx.SetFaultHook(s.Hook())
	defer mrx.SetFaultHook(nil)

	ec := ExecConfig{Workers: 2, HeartbeatEvery: 50 * time.Millisecond}
	got, err := p.job().RunExec(context.Background(), execTestJob,
		encodeExecParams(t, p), ec, inputs)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback result diverged:\ngot  %+v\nwant %+v", got, want)
	}

	ec.DisableFallback = true
	if _, err := p.job().RunExec(context.Background(), execTestJob,
		encodeExecParams(t, p), ec, inputs); !errors.Is(err, mrx.ErrExecUnavailable) {
		t.Fatalf("DisableFallback: err = %v, want ErrExecUnavailable", err)
	}
}

// TestExecDisabledRunsInProcess: the zero ExecConfig must route straight
// to Run.
func TestExecDisabledRunsInProcess(t *testing.T) {
	p := baseExecParams()
	inputs := execTestLines(12)
	want, err := p.job().Run(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.job().RunExec(context.Background(), execTestJob,
		encodeExecParams(t, p), ExecConfig{}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("disabled exec diverged from Run:\ngot  %+v\nwant %+v", got, want)
	}
}
