package mapreduce

import (
	"baywatch/internal/faultinject"

	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Spill support: when a job's intermediate state would exceed memory, map
// workers serialize their per-partition groups to temporary gob files and
// reset; the shuffle replays the spill files before the in-memory
// remainder. This mirrors Hadoop's map-side spill and keeps month-scale
// analyses within a bounded footprint.
//
// Spilling is enabled through JobConfig.SpillDir and tuned with
// JobConfig.SpillThreshold (map-output pairs buffered per worker before a
// flush). Keys and values must be gob-encodable when spilling is on.

// Spill files carry a fixed 20-byte footer so the shuffle can tell a
// complete file from one truncated or corrupted between flush and replay:
//
//	magic "BWSP" | entryCount uint32 | payloadLen uint64 | crc32 uint32
//
// (all little-endian; the CRC32-IEEE covers the gob payload only).
const (
	spillMagic     = "BWSP"
	spillFooterLen = 20
)

// ErrSpillCorrupt reports a spill file that failed validation on replay:
// missing or mangled footer, length mismatch, checksum mismatch, or a gob
// stream that does not decode to the recorded entry count.
var ErrSpillCorrupt = errors.New("mapreduce: spill file corrupt")

// spillEntry is the on-disk unit: one key's buffered values, in
// first-emission order.
type spillEntry[K comparable, V any] struct {
	Key    K
	Values []V
}

// spillWriter flushes a map shard's partitions to disk.
type spillWriter[K comparable, V any] struct {
	dir    string
	worker int
	seq    int
	// files[p] lists partition p's spill files in flush order.
	files [][]string
}

func newSpillWriter[K comparable, V any](dir string, worker, partitions int) *spillWriter[K, V] {
	return &spillWriter[K, V]{dir: dir, worker: worker, files: make([][]string, partitions)}
}

// flush writes every non-empty partition of the shard to its own spill
// file and clears the in-memory groups.
func (w *spillWriter[K, V]) flush(groups []map[K][]V, order [][]K) error {
	for p := range groups {
		if len(groups[p]) == 0 {
			continue
		}
		path := filepath.Join(w.dir, fmt.Sprintf("spill-w%d-p%d-s%d.gob", w.worker, p, w.seq))
		if err := writeSpillFile(path, groups[p], order[p]); err != nil {
			return err
		}
		w.files[p] = append(w.files[p], path)
		groups[p] = make(map[K][]V)
		order[p] = order[p][:0]
	}
	w.seq++
	return nil
}

// countingWriter tracks how many bytes pass through it (the payload
// length recorded in the footer).
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeSpillFile[K comparable, V any](path string, group map[K][]V, order []K) error {
	if err := faultCheck(faultinject.PointMapreduceSpillWrite); err != nil {
		return fmt.Errorf("mapreduce: write spill: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mapreduce: create spill: %w", err)
	}
	crc := crc32.NewIEEE()
	cw := &countingWriter{w: io.MultiWriter(f, crc)}
	enc := gob.NewEncoder(cw)
	for _, k := range order {
		if err := enc.Encode(spillEntry[K, V]{Key: k, Values: group[k]}); err != nil {
			f.Close()
			return fmt.Errorf("mapreduce: encode spill: %w", err)
		}
	}
	var footer [spillFooterLen]byte
	copy(footer[:], spillMagic)
	binary.LittleEndian.PutUint32(footer[4:], uint32(len(order)))
	binary.LittleEndian.PutUint64(footer[8:], uint64(cw.n))
	binary.LittleEndian.PutUint32(footer[16:], crc.Sum32())
	if _, err := f.Write(footer[:]); err != nil {
		f.Close()
		return fmt.Errorf("mapreduce: write spill footer: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("mapreduce: close spill: %w", err)
	}
	return nil
}

// replaySpill merges one spill file into the partition's groups,
// preserving first-emission key order. The file's footer is validated
// (length, entry count and checksum) before any decoded data is trusted;
// a file that fails validation yields ErrSpillCorrupt and contributes
// nothing.
func replaySpill[K comparable, V any](path string, group map[K][]V, order *[]K) error {
	if err := faultCheck(faultinject.PointMapreduceSpillReplay); err != nil {
		return fmt.Errorf("mapreduce: replay spill: %w", err)
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("mapreduce: open spill: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("mapreduce: stat spill: %w", err)
	}
	if fi.Size() < spillFooterLen {
		return fmt.Errorf("%w: %s: %d bytes, shorter than footer", ErrSpillCorrupt, path, fi.Size())
	}
	var footer [spillFooterLen]byte
	if _, err := f.ReadAt(footer[:], fi.Size()-spillFooterLen); err != nil {
		return fmt.Errorf("mapreduce: read spill footer: %w", err)
	}
	if string(footer[:4]) != spillMagic {
		return fmt.Errorf("%w: %s: bad footer magic", ErrSpillCorrupt, path)
	}
	entryCount := binary.LittleEndian.Uint32(footer[4:])
	payloadLen := binary.LittleEndian.Uint64(footer[8:])
	wantCRC := binary.LittleEndian.Uint32(footer[16:])
	if payloadLen != uint64(fi.Size()-spillFooterLen) {
		return fmt.Errorf("%w: %s: payload length %d does not match file size %d",
			ErrSpillCorrupt, path, payloadLen, fi.Size())
	}

	// Stream-decode the payload while checksumming every byte read. The
	// decoded entries are staged and merged only after validation, so a
	// corrupt file contributes nothing.
	crc := crc32.NewIEEE()
	tee := io.TeeReader(io.LimitReader(f, int64(payloadLen)), crc)
	dec := gob.NewDecoder(tee)
	staged := make([]spillEntry[K, V], 0, entryCount)
	for i := uint32(0); i < entryCount; i++ {
		var e spillEntry[K, V]
		if err := dec.Decode(&e); err != nil {
			return fmt.Errorf("%w: %s: decode entry %d/%d: %v", ErrSpillCorrupt, path, i, entryCount, err)
		}
		staged = append(staged, e)
	}
	var extra spillEntry[K, V]
	if err := dec.Decode(&extra); !errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: %s: trailing entries beyond recorded count %d", ErrSpillCorrupt, path, entryCount)
	}
	if _, err := io.Copy(io.Discard, tee); err != nil {
		return fmt.Errorf("mapreduce: drain spill: %w", err)
	}
	if got := crc.Sum32(); got != wantCRC {
		return fmt.Errorf("%w: %s: checksum mismatch (got %08x, want %08x)", ErrSpillCorrupt, path, got, wantCRC)
	}

	for _, e := range staged {
		if _, seen := group[e.Key]; !seen {
			*order = append(*order, e.Key)
		}
		group[e.Key] = append(group[e.Key], e.Values...)
	}
	return nil
}
