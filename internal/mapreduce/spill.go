package mapreduce

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Spill support: when a job's intermediate state would exceed memory, map
// workers serialize their per-partition groups to temporary gob files and
// reset; the shuffle replays the spill files before the in-memory
// remainder. This mirrors Hadoop's map-side spill and keeps month-scale
// analyses within a bounded footprint.
//
// Spilling is enabled through JobConfig.SpillDir and tuned with
// JobConfig.SpillThreshold (map-output pairs buffered per worker before a
// flush). Keys and values must be gob-encodable when spilling is on.

// spillEntry is the on-disk unit: one key's buffered values, in
// first-emission order.
type spillEntry[K comparable, V any] struct {
	Key    K
	Values []V
}

// spillWriter flushes a map shard's partitions to disk.
type spillWriter[K comparable, V any] struct {
	dir    string
	worker int
	seq    int
	// files[p] lists partition p's spill files in flush order.
	files [][]string
}

func newSpillWriter[K comparable, V any](dir string, worker, partitions int) *spillWriter[K, V] {
	return &spillWriter[K, V]{dir: dir, worker: worker, files: make([][]string, partitions)}
}

// flush writes every non-empty partition of the shard to its own spill
// file and clears the in-memory groups.
func (w *spillWriter[K, V]) flush(groups []map[K][]V, order [][]K) error {
	for p := range groups {
		if len(groups[p]) == 0 {
			continue
		}
		path := filepath.Join(w.dir, fmt.Sprintf("spill-w%d-p%d-s%d.gob", w.worker, p, w.seq))
		if err := writeSpillFile(path, groups[p], order[p]); err != nil {
			return err
		}
		w.files[p] = append(w.files[p], path)
		groups[p] = make(map[K][]V)
		order[p] = order[p][:0]
	}
	w.seq++
	return nil
}

func writeSpillFile[K comparable, V any](path string, group map[K][]V, order []K) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mapreduce: create spill: %w", err)
	}
	enc := gob.NewEncoder(f)
	for _, k := range order {
		if err := enc.Encode(spillEntry[K, V]{Key: k, Values: group[k]}); err != nil {
			f.Close()
			return fmt.Errorf("mapreduce: encode spill: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("mapreduce: close spill: %w", err)
	}
	return nil
}

// replaySpill merges one spill file into the partition's groups,
// preserving first-emission key order.
func replaySpill[K comparable, V any](path string, group map[K][]V, order *[]K) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("mapreduce: open spill: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	for {
		var e spillEntry[K, V]
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("mapreduce: decode spill: %w", err)
		}
		if _, seen := group[e.Key]; !seen {
			*order = append(*order, e.Key)
		}
		group[e.Key] = append(group[e.Key], e.Values...)
	}
}
