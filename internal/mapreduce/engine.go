// Package mapreduce implements the in-process parallel MapReduce engine
// BAYWATCH's pipeline phases run on. It reproduces the programming model of
// the paper's Hadoop implementation — modular jobs, hash partitioning to
// control reducer fan-out, combiners, counters, and job chaining — with
// goroutine worker pools standing in for cluster nodes.
//
// The engine is generic over input, intermediate and output types:
//
//	job := mapreduce.NewJob[Line, string, int, Pair](
//	        mapreduce.JobConfig{Mappers: 8, Partitions: 32},
//	        mapFn, reduceFn)
//	out, err := job.Run(ctx, inputs)
//
// Map tasks consume the input in parallel and emit key/value pairs; pairs
// are hash-partitioned, grouped per key, and handed to parallel reduce
// tasks. Like Hadoop, a reduce call sees every value of one key.
package mapreduce

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Emitter receives key/value pairs from a map task.
type Emitter[K comparable, V any] func(key K, value V)

// MapFunc transforms one input record into zero or more key/value pairs.
type MapFunc[I any, K comparable, V any] func(input I, emit Emitter[K, V]) error

// ReduceFunc folds all values of one key into zero or more outputs.
type ReduceFunc[K comparable, V any, O any] func(key K, values []V, emit func(O)) error

// CombineFunc locally pre-aggregates the values of one key on the map side
// before the shuffle, cutting shuffle volume (Hadoop's combiner).
type CombineFunc[K comparable, V any] func(key K, values []V) []V

// JobConfig controls parallelism and partitioning.
type JobConfig struct {
	// Name appears in error messages and counters.
	Name string
	// Mappers is the number of parallel map workers; defaults to
	// GOMAXPROCS.
	Mappers int
	// Reducers is the number of parallel reduce workers; defaults to
	// GOMAXPROCS.
	Reducers int
	// PartitionBits controls the number of shuffle partitions
	// (2^PartitionBits), mirroring the paper's hash function H: "a 5-bit
	// hash results in 32 REDUCE tasks". Defaults to 5.
	PartitionBits int
	// KeyHash overrides the partition hash. The default hashes the key's
	// string form with FNV-1a.
	KeyHash func(any) uint64
	// SpillDir enables map-side disk spilling: when set, each map worker
	// flushes its buffered groups to gob files under a temporary directory
	// inside SpillDir whenever the buffer exceeds SpillThreshold pairs.
	// Keys and values must be gob-encodable. Empty means fully in-memory.
	SpillDir string
	// SpillThreshold is the per-worker buffered pair count that triggers a
	// flush. Defaults to 1<<20.
	SpillThreshold int
	// MaxRetries is the number of times a failing map input or reduce key
	// is retried before the failure is final (emissions from failed
	// attempts are discarded, so retries never duplicate output). 0 means
	// no retries.
	MaxRetries int
	// MaxFailedInputs is the poisoned-record budget: map inputs that still
	// fail after MaxRetries are skipped and counted (Counters.FailedInputs)
	// as long as their total stays within the budget; one more aborts the
	// job. 0 (the default) aborts on the first final failure.
	MaxFailedInputs int
}

func (c JobConfig) withDefaults() JobConfig {
	if c.Mappers <= 0 {
		c.Mappers = runtime.GOMAXPROCS(0)
	}
	if c.Reducers <= 0 {
		c.Reducers = runtime.GOMAXPROCS(0)
	}
	if c.PartitionBits <= 0 {
		c.PartitionBits = 5
	}
	if c.PartitionBits > 16 {
		c.PartitionBits = 16
	}
	if c.KeyHash == nil {
		c.KeyHash = defaultKeyHash
	}
	if c.SpillThreshold <= 0 {
		c.SpillThreshold = 1 << 20
	}
	return c
}

func defaultKeyHash(key any) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", key)
	return h.Sum64()
}

// Job is a configured MapReduce job. Create it with NewJob and execute it
// with Run; a Job is immutable and can be Run repeatedly.
type Job[I any, K comparable, V any, O any] struct {
	cfg     JobConfig
	mapFn   MapFunc[I, K, V]
	reduce  ReduceFunc[K, V, O]
	combine CombineFunc[K, V]
}

// NewJob builds a job from a map and a reduce function.
func NewJob[I any, K comparable, V any, O any](
	cfg JobConfig,
	mapFn MapFunc[I, K, V],
	reduceFn ReduceFunc[K, V, O],
) *Job[I, K, V, O] {
	return &Job[I, K, V, O]{cfg: cfg.withDefaults(), mapFn: mapFn, reduce: reduceFn}
}

// WithCombiner returns a copy of the job that applies combine on the map
// side before the shuffle.
func (j *Job[I, K, V, O]) WithCombiner(combine CombineFunc[K, V]) *Job[I, K, V, O] {
	cp := *j
	cp.combine = combine
	return &cp
}

// Counters reports the volume statistics of one run.
type Counters struct {
	// InputRecords is the number of inputs consumed by map tasks.
	InputRecords int64
	// MapOutputPairs is the number of key/value pairs emitted by map tasks
	// (before combining).
	MapOutputPairs int64
	// ShufflePairs is the number of pairs crossing the shuffle (after
	// combining).
	ShufflePairs int64
	// DistinctKeys is the number of distinct keys reduced.
	DistinctKeys int64
	// OutputRecords is the number of outputs emitted by reduce tasks.
	OutputRecords int64
	// Retries is the number of task retries performed (map and reduce).
	Retries int64
	// FailedInputs is the number of map inputs skipped as poisoned after
	// exhausting their retries (bounded by JobConfig.MaxFailedInputs).
	FailedInputs int64
}

// Result bundles a run's outputs and counters.
type Result[O any] struct {
	Outputs  []O
	Counters Counters
}

// Run executes the job over the inputs. Outputs are returned in an
// unspecified but deterministic order (sorted by partition, then by key
// hash, then by key order of first emission). Run aborts early when ctx is
// cancelled or any task returns an error.
func (j *Job[I, K, V, O]) Run(ctx context.Context, inputs []I) (*Result[O], error) {
	nParts := 1 << j.cfg.PartitionBits

	// Optional disk spill: one temp dir per run, removed on return.
	var spillRoot string
	if j.cfg.SpillDir != "" {
		dir, err := os.MkdirTemp(j.cfg.SpillDir, "mrspill-")
		if err != nil {
			return nil, fmt.Errorf("%s: spill dir: %w", j.name(), err)
		}
		spillRoot = dir
		defer os.RemoveAll(spillRoot)
	}

	// ---- map phase -------------------------------------------------------
	type mapShard struct {
		// groups accumulates values per key per partition.
		groups []map[K][]V
		// order remembers first-emission order per partition for
		// deterministic output.
		order  []([]K)
		pairs  int64
		inputs int64
		// buffered counts pairs held in memory since the last flush.
		buffered int64
		spill    *spillWriter[K, V]
	}
	shards := make([]*mapShard, j.cfg.Mappers)
	for w := range shards {
		s := &mapShard{groups: make([]map[K][]V, nParts), order: make([][]K, nParts)}
		for p := range s.groups {
			s.groups[p] = make(map[K][]V)
		}
		if spillRoot != "" {
			s.spill = newSpillWriter[K, V](spillRoot, w, nParts)
		}
		shards[w] = s
	}

	mapCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Failure accounting shared across map workers: retries for the
	// counters, failed inputs against the poisoned-record budget.
	var retriesTotal, failedTotal atomic.Int64

	// runMap executes the map function for one input, converting panics
	// into errors so a single poisoned record cannot take down the job.
	runMap := func(in I, emit Emitter[K, V]) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("map panic: %v", r)
			}
		}()
		return j.mapFn(in, emit)
	}

	var wg sync.WaitGroup
	errc := make(chan error, j.cfg.Mappers+j.cfg.Reducers)
	for w := 0; w < j.cfg.Mappers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := shards[w]
			emit := func(key K, value V) {
				p := int(j.cfg.KeyHash(key) % uint64(nParts))
				g := shard.groups[p]
				if _, seen := g[key]; !seen {
					shard.order[p] = append(shard.order[p], key)
				}
				g[key] = append(g[key], value)
				shard.pairs++
				shard.buffered++
			}
			applyCombiner := func() {
				if j.combine == nil {
					return
				}
				for p := range shard.groups {
					for k, vs := range shard.groups[p] {
						shard.groups[p][k] = j.combine(k, vs)
					}
				}
			}
			// Staged emission: with retries or a failure budget enabled,
			// an input's pairs are buffered and merged into the shard only
			// after its map call succeeds, so failed attempts never leave
			// partial emissions behind.
			type stagedPair struct {
				key   K
				value V
			}
			staging := j.cfg.MaxRetries > 0 || j.cfg.MaxFailedInputs > 0
			var staged []stagedPair
			stageEmit := func(key K, value V) {
				staged = append(staged, stagedPair{key: key, value: value})
			}
			// Strided assignment keeps the work distribution deterministic.
			for i := w; i < len(inputs); i += j.cfg.Mappers {
				if mapCtx.Err() != nil {
					return
				}
				shard.inputs++
				var err error
				if staging {
					for attempt := 0; attempt <= j.cfg.MaxRetries; attempt++ {
						staged = staged[:0]
						if err = runMap(inputs[i], stageEmit); err == nil {
							break
						}
						if attempt < j.cfg.MaxRetries {
							retriesTotal.Add(1)
						}
					}
					if err == nil {
						for _, sp := range staged {
							emit(sp.key, sp.value)
						}
					}
				} else {
					err = runMap(inputs[i], emit)
				}
				if err != nil {
					if failed := failedTotal.Add(1); failed <= int64(j.cfg.MaxFailedInputs) {
						continue // poisoned record skipped, within budget
					}
					errc <- fmt.Errorf("%s: map input %d: %w", j.name(), i, err)
					cancel()
					return
				}
				if shard.spill != nil && shard.buffered >= int64(j.cfg.SpillThreshold) {
					applyCombiner()
					if err := shard.spill.flush(shard.groups, shard.order); err != nil {
						errc <- fmt.Errorf("%s: %w", j.name(), err)
						cancel()
						return
					}
					shard.buffered = 0
				}
			}
			applyCombiner()
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var counters Counters
	for _, s := range shards {
		counters.InputRecords += s.inputs
		counters.MapOutputPairs += s.pairs
	}
	counters.Retries = retriesTotal.Load()
	counters.FailedInputs = failedTotal.Load()

	// ---- shuffle: merge map shards per partition --------------------------
	// Spill files replay first (in flush order), then each shard's
	// in-memory remainder, keeping key order deterministic.
	partGroups := make([]map[K][]V, nParts)
	partOrder := make([][]K, nParts)
	for p := 0; p < nParts; p++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		partGroups[p] = make(map[K][]V)
		for _, s := range shards {
			if s.spill != nil {
				for _, path := range s.spill.files[p] {
					if err := replaySpill(path, partGroups[p], &partOrder[p]); err != nil {
						return nil, fmt.Errorf("%s: %w", j.name(), err)
					}
				}
			}
			for _, k := range s.order[p] {
				if _, seen := partGroups[p][k]; !seen {
					partOrder[p] = append(partOrder[p], k)
				}
				partGroups[p][k] = append(partGroups[p][k], s.groups[p][k]...)
			}
		}
		for _, vs := range partGroups[p] {
			counters.ShufflePairs += int64(len(vs))
		}
		counters.DistinctKeys += int64(len(partGroups[p]))
	}

	// ---- reduce phase ------------------------------------------------------
	partOutputs := make([][]O, nParts)
	partCh := make(chan int)
	redCtx, redCancel := context.WithCancel(ctx)
	defer redCancel()

	// runReduce executes the reduce function for one key, converting
	// panics into errors.
	runReduce := func(k K, vs []V, emit func(O)) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("reduce panic: %v", r)
			}
		}()
		return j.reduce(k, vs, emit)
	}

	var rwg sync.WaitGroup
	for w := 0; w < j.cfg.Reducers; w++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for p := range partCh {
				var outs []O
				emit := func(o O) { outs = append(outs, o) }
				for _, k := range partOrder[p] {
					if redCtx.Err() != nil {
						return
					}
					// Retry with the output truncated to its pre-key
					// length, so failed attempts never duplicate output.
					base := len(outs)
					var err error
					for attempt := 0; attempt <= j.cfg.MaxRetries; attempt++ {
						outs = outs[:base]
						if err = runReduce(k, partGroups[p][k], emit); err == nil {
							break
						}
						if attempt < j.cfg.MaxRetries {
							retriesTotal.Add(1)
						}
					}
					if err != nil {
						errc <- fmt.Errorf("%s: reduce key %v: %w", j.name(), k, err)
						redCancel()
						return
					}
				}
				partOutputs[p] = outs
			}
		}()
	}
feed:
	for p := 0; p < nParts; p++ {
		select {
		case partCh <- p:
		case <-redCtx.Done():
			break feed
		}
	}
	close(partCh)
	rwg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	counters.Retries = retriesTotal.Load() // include reduce-phase retries
	res := &Result[O]{Counters: counters}
	for p := 0; p < nParts; p++ {
		res.Outputs = append(res.Outputs, partOutputs[p]...)
	}
	res.Counters.OutputRecords = int64(len(res.Outputs))
	return res, nil
}

func (j *Job[I, K, V, O]) name() string {
	if j.cfg.Name != "" {
		return j.cfg.Name
	}
	return "mapreduce"
}

// SortOutputs orders outputs with the provided less function; a
// convenience for deterministic downstream processing and golden tests.
func SortOutputs[O any](outs []O, less func(a, b O) bool) {
	sort.SliceStable(outs, func(i, k int) bool { return less(outs[i], outs[k]) })
}
