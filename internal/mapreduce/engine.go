// Package mapreduce implements the in-process parallel MapReduce engine
// BAYWATCH's pipeline phases run on. It reproduces the programming model of
// the paper's Hadoop implementation — modular jobs, hash partitioning to
// control reducer fan-out, combiners, counters, and job chaining — with
// goroutine worker pools standing in for cluster nodes.
//
// The engine is generic over input, intermediate and output types:
//
//	job := mapreduce.NewJob[Line, string, int, Pair](
//	        mapreduce.JobConfig{Mappers: 8, Partitions: 32},
//	        mapFn, reduceFn)
//	out, err := job.Run(ctx, inputs)
//
// Map tasks consume the input in parallel and emit key/value pairs; pairs
// are hash-partitioned, grouped per key, and handed to parallel reduce
// tasks. Like Hadoop, a reduce call sees every value of one key.
package mapreduce

import (
	"baywatch/internal/faultinject"

	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"baywatch/internal/guard"
)

// Emitter receives key/value pairs from a map task.
type Emitter[K comparable, V any] func(key K, value V)

// MapFunc transforms one input record into zero or more key/value pairs.
type MapFunc[I any, K comparable, V any] func(input I, emit Emitter[K, V]) error

// ReduceFunc folds all values of one key into zero or more outputs.
type ReduceFunc[K comparable, V any, O any] func(key K, values []V, emit func(O)) error

// CombineFunc locally pre-aggregates the values of one key on the map side
// before the shuffle, cutting shuffle volume (Hadoop's combiner).
type CombineFunc[K comparable, V any] func(key K, values []V) []V

// JobConfig controls parallelism and partitioning.
type JobConfig struct {
	// Name appears in error messages and counters.
	Name string
	// Mappers is the number of parallel map workers; defaults to
	// GOMAXPROCS.
	Mappers int
	// Reducers is the number of parallel reduce workers; defaults to
	// GOMAXPROCS.
	Reducers int
	// PartitionBits controls the number of shuffle partitions
	// (2^PartitionBits), mirroring the paper's hash function H: "a 5-bit
	// hash results in 32 REDUCE tasks". Defaults to 5.
	PartitionBits int
	// KeyHash overrides the partition hash. The default hashes the key's
	// string form with FNV-1a.
	KeyHash func(any) uint64
	// SpillDir enables map-side disk spilling: when set, each map worker
	// flushes its buffered groups to gob files under a temporary directory
	// inside SpillDir whenever the buffer exceeds SpillThreshold pairs.
	// Keys and values must be gob-encodable. Empty means fully in-memory.
	SpillDir string
	// SpillThreshold is the per-worker buffered pair count that triggers a
	// flush. Defaults to 1<<20.
	SpillThreshold int
	// MaxRetries is the number of times a failing map input or reduce key
	// is retried before the failure is final (emissions from failed
	// attempts are discarded, so retries never duplicate output). 0 means
	// no retries.
	MaxRetries int
	// MaxFailedInputs is the poisoned-record budget: map inputs that still
	// fail after MaxRetries are skipped and counted (Counters.FailedInputs)
	// as long as their total stays within the budget; one more aborts the
	// job. 0 (the default) aborts on the first final failure.
	MaxFailedInputs int
	// MaxFailedKeys is the reduce-side failure budget: reduce keys whose
	// final attempt fails (including by timeout or stall) are dropped and
	// counted (Counters.FailedKeys) as long as their total stays within
	// the budget; one more aborts the job. 0 aborts on the first final
	// reduce failure.
	MaxFailedKeys int
	// Backoff is the base delay before a task retry; successive retries
	// back off exponentially (doubling per attempt, capped at MaxBackoff)
	// with deterministic jitter in [delay/2, delay), so a transiently
	// failing input is not hammered. 0 retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the per-retry delay; defaults to 16*Backoff.
	MaxBackoff time.Duration
	// TaskTimeout bounds each map-input and reduce-key call in wall-clock
	// time. A timed-out task is a final failure (never retried — retrying
	// a hang doubles the damage) charged against MaxFailedInputs or
	// MaxFailedKeys. The overrunning call is abandoned to drain on its
	// own, not killed. 0 disables.
	TaskTimeout time.Duration
	// Watchdog, when non-nil, receives per-worker progress heartbeats;
	// a worker that stops progressing between tasks has its current task
	// cancelled (a final failure, like a timeout). The engine registers
	// and deregisters its workers itself.
	Watchdog *guard.Watchdog
}

func (c JobConfig) withDefaults() JobConfig {
	if c.Mappers <= 0 {
		c.Mappers = runtime.GOMAXPROCS(0)
	}
	if c.Reducers <= 0 {
		c.Reducers = runtime.GOMAXPROCS(0)
	}
	if c.PartitionBits <= 0 {
		c.PartitionBits = 5
	}
	if c.PartitionBits > 16 {
		c.PartitionBits = 16
	}
	if c.KeyHash == nil {
		c.KeyHash = defaultKeyHash
	}
	if c.SpillThreshold <= 0 {
		c.SpillThreshold = 1 << 20
	}
	if c.MaxBackoff <= 0 && c.Backoff > 0 {
		c.MaxBackoff = 16 * c.Backoff
	}
	return c
}

// guarded reports whether tasks need the bounded-execution path (a
// per-task goroutine that deadlines and watchdog cancellation can
// abandon).
func (c JobConfig) guarded() bool { return c.TaskTimeout > 0 || c.Watchdog != nil }

// retryDelay computes the capped exponential backoff before retry
// `attempt` (1-based) of the named task. The jitter is deterministic —
// derived from the job name, task id and attempt — so runs replay
// identically.
func retryDelay(cfg JobConfig, name string, task, attempt int) time.Duration {
	if cfg.Backoff <= 0 {
		return 0
	}
	d := cfg.Backoff
	for i := 1; i < attempt && d < cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > cfg.MaxBackoff {
		d = cfg.MaxBackoff
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d", name, task, attempt)
	frac := float64(h.Sum64()%1024) / 1024 // deterministic in [0, 1)
	return d/2 + time.Duration(frac*float64(d/2))
}

// sleepRetry waits the backoff delay, returning false if ctx is
// cancelled first.
func sleepRetry(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// finalFailure reports errors that must not be retried: deadline
// overruns, watchdog stalls, and context cancellation (retrying a hang
// doubles the damage; retrying a cancelled task fights the shutdown).
func finalFailure(err error) bool {
	return errors.Is(err, guard.ErrTimeout) || errors.Is(err, guard.ErrStalled) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func defaultKeyHash(key any) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", key)
	return h.Sum64()
}

// Job is a configured MapReduce job. Create it with NewJob and execute it
// with Run; a Job is immutable and can be Run repeatedly.
type Job[I any, K comparable, V any, O any] struct {
	cfg     JobConfig
	mapFn   MapFunc[I, K, V]
	reduce  ReduceFunc[K, V, O]
	combine CombineFunc[K, V]
}

// NewJob builds a job from a map and a reduce function.
func NewJob[I any, K comparable, V any, O any](
	cfg JobConfig,
	mapFn MapFunc[I, K, V],
	reduceFn ReduceFunc[K, V, O],
) *Job[I, K, V, O] {
	return &Job[I, K, V, O]{cfg: cfg.withDefaults(), mapFn: mapFn, reduce: reduceFn}
}

// WithCombiner returns a copy of the job that applies combine on the map
// side before the shuffle.
func (j *Job[I, K, V, O]) WithCombiner(combine CombineFunc[K, V]) *Job[I, K, V, O] {
	cp := *j
	cp.combine = combine
	return &cp
}

// Counters reports the volume statistics of one run.
type Counters struct {
	// InputRecords is the number of inputs consumed by map tasks.
	InputRecords int64
	// MapOutputPairs is the number of key/value pairs emitted by map tasks
	// (before combining).
	MapOutputPairs int64
	// ShufflePairs is the number of pairs crossing the shuffle (after
	// combining).
	ShufflePairs int64
	// DistinctKeys is the number of distinct keys reduced.
	DistinctKeys int64
	// OutputRecords is the number of outputs emitted by reduce tasks.
	OutputRecords int64
	// Retries is the number of task retries performed (map and reduce).
	Retries int64
	// FailedInputs is the number of map inputs skipped as poisoned after
	// exhausting their retries (bounded by JobConfig.MaxFailedInputs).
	FailedInputs int64
	// FailedKeys is the number of reduce keys dropped after their final
	// attempt failed (bounded by JobConfig.MaxFailedKeys).
	FailedKeys int64
	// CorruptSpills is the number of spill files that failed checksum
	// validation during the shuffle and were quarantined.
	CorruptSpills int64
	// ShardReruns is the number of map shards re-executed to regenerate
	// quarantined spill files (at most one rerun per shard).
	ShardReruns int64
}

// Result bundles a run's outputs and counters.
type Result[O any] struct {
	Outputs  []O
	Counters Counters
}

// Run executes the job over the inputs. Outputs are returned in an
// unspecified but deterministic order (sorted by partition, then by key
// hash, then by key order of first emission). Run aborts early when ctx is
// cancelled or any task returns an error.
func (j *Job[I, K, V, O]) Run(ctx context.Context, inputs []I) (*Result[O], error) {
	// Strided assignment keeps the work distribution deterministic, and —
	// because sourceFor hands out a fresh iterator per call — lets the
	// shuffle re-execute a single map shard to regenerate a spill file
	// that fails validation (rerunnable=true).
	return j.run(ctx, func(w int) func() (I, int, bool) {
		i := w - j.cfg.Mappers
		return func() (I, int, bool) {
			i += j.cfg.Mappers
			if i >= len(inputs) {
				var zero I
				return zero, 0, false
			}
			return inputs[i], i, true
		}
	}, true)
}

// RunStream executes the job over a pull iterator instead of a
// materialized input slice: map workers draw inputs from next until it
// reports exhaustion, so multi-GB input streams (e.g. sharded log scans)
// flow through the job without ever being held in memory at once. next is
// called under an internal lock — it need not be safe for concurrent use —
// and must be cheap; do heavy per-input work in the map function, which
// runs in parallel. Retries, failure budgets, combiners, spilling and
// counters behave exactly as in Run; the only semantic difference is that
// input-to-worker assignment follows pull order rather than the
// deterministic stride (output determinism is unaffected: the shuffle
// orders by partition, then first-emission key order per shard merge, and
// shard merges follow worker index as in Run).
func (j *Job[I, K, V, O]) RunStream(ctx context.Context, next func() (I, bool)) (*Result[O], error) {
	var mu sync.Mutex
	idx := -1
	pull := func() (I, int, bool) {
		mu.Lock()
		defer mu.Unlock()
		in, ok := next()
		if !ok {
			var zero I
			return zero, 0, false
		}
		idx++
		return in, idx, true
	}
	// The shared pull iterator is consumed as it goes, so a corrupt spill
	// cannot be regenerated by re-running its shard (rerunnable=false).
	return j.run(ctx, func(int) func() (I, int, bool) { return pull }, false)
}

// run is the engine shared by Run and RunStream. sourceFor returns worker
// w's input fetcher: each call yields the next input with its global
// index, or ok=false when the worker's share is exhausted. rerunnable
// promises that sourceFor(w) yields the same sequence on every call,
// allowing the shuffle to re-execute a map shard whose spill file fails
// validation instead of aborting the job.
func (j *Job[I, K, V, O]) run(ctx context.Context, sourceFor func(w int) func() (I, int, bool), rerunnable bool) (*Result[O], error) {
	nParts := 1 << j.cfg.PartitionBits

	// Optional disk spill: one temp dir per run, removed on return.
	var spillRoot string
	if j.cfg.SpillDir != "" {
		dir, err := os.MkdirTemp(j.cfg.SpillDir, "mrspill-")
		if err != nil {
			return nil, fmt.Errorf("%s: spill dir: %w", j.name(), err)
		}
		spillRoot = dir
		defer os.RemoveAll(spillRoot)
	}

	// ---- map phase -------------------------------------------------------
	type mapShard struct {
		// groups accumulates values per key per partition.
		groups []map[K][]V
		// order remembers first-emission order per partition for
		// deterministic output.
		order  []([]K)
		pairs  int64
		inputs int64
		// buffered counts pairs held in memory since the last flush.
		buffered int64
		spill    *spillWriter[K, V]
	}
	shards := make([]*mapShard, j.cfg.Mappers)
	for w := range shards {
		s := &mapShard{groups: make([]map[K][]V, nParts), order: make([][]K, nParts)}
		for p := range s.groups {
			s.groups[p] = make(map[K][]V)
		}
		if spillRoot != "" {
			s.spill = newSpillWriter[K, V](spillRoot, w, nParts)
		}
		shards[w] = s
	}

	mapCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Failure accounting shared across the phases: retries for the
	// counters, failed inputs/keys against the failure budgets.
	var retriesTotal, failedTotal, failedKeysTotal atomic.Int64

	// runMap executes the map function for one input, converting panics
	// into errors so a single poisoned record cannot take down the job.
	runMap := func(in I, emit Emitter[K, V]) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("map panic: %v", r)
			}
		}()
		if err := faultCheck(faultinject.PointMapreduceMapTask); err != nil {
			return err
		}
		return j.mapFn(in, emit)
	}

	// runShard executes one map shard to completion: consume sourceFor(w),
	// emit into the shard's groups, flush spills at the threshold, apply
	// the combiner. Shared by the parallel map phase and — because strided
	// sources replay identically — by the shuffle's corrupt-spill
	// recovery, which re-runs a single shard into a fresh spill directory.
	// retries and failed are the failure-accounting sinks (the recovery
	// rerun uses throwaway ones so its retries and skips are not
	// double-counted against the job's budgets).
	runShard := func(shardCtx context.Context, w int, shard *mapShard, label string, retries, failed *atomic.Int64) error {
		emit := func(key K, value V) {
			p := int(j.cfg.KeyHash(key) % uint64(nParts))
			g := shard.groups[p]
			if _, seen := g[key]; !seen {
				shard.order[p] = append(shard.order[p], key)
			}
			g[key] = append(g[key], value)
			shard.pairs++
			shard.buffered++
		}
		applyCombiner := func() {
			if j.combine == nil {
				return
			}
			for p := range shard.groups {
				for k, vs := range shard.groups[p] {
					shard.groups[p][k] = j.combine(k, vs)
				}
			}
		}
		type stagedPair struct {
			key   K
			value V
		}
		var wk *guard.Worker
		if j.cfg.Watchdog != nil {
			wk = j.cfg.Watchdog.Worker(fmt.Sprintf("%s/%s-%d", j.name(), label, w))
			defer wk.Done()
		}
		// runTask executes the map call for one input on the staged
		// path: emissions collect into a local slice returned by
		// value, so failed, timed-out, or abandoned attempts never
		// leave partial (or racing) emissions behind. The unguarded
		// path reuses one buffer across inputs — nothing can abandon
		// the call mid-append there; the guarded path must allocate
		// per call, since an abandoned attempt keeps appending to its
		// slice while the worker moves on.
		var stagedBuf []stagedPair
		runTask := func(in I) ([]stagedPair, error) {
			if !j.cfg.guarded() {
				stagedBuf = stagedBuf[:0]
				if err := runMap(in, func(k K, v V) {
					stagedBuf = append(stagedBuf, stagedPair{key: k, value: v})
				}); err != nil {
					return nil, err
				}
				return stagedBuf, nil
			}
			call := func() ([]stagedPair, error) {
				var local []stagedPair
				if err := runMap(in, func(k K, v V) {
					local = append(local, stagedPair{key: k, value: v})
				}); err != nil {
					return nil, err
				}
				return local, nil
			}
			return guard.BoundWork(shardCtx, wk, j.cfg.TaskTimeout, call)
		}
		// Staged emission: with retries, a failure budget, or bounded
		// execution enabled, an input's pairs are merged into the
		// shard only after its map call succeeds.
		staging := j.cfg.MaxRetries > 0 || j.cfg.MaxFailedInputs > 0 || j.cfg.guarded()
		nextInput := sourceFor(w)
		for {
			if shardCtx.Err() != nil {
				return nil
			}
			in, i, ok := nextInput()
			if !ok {
				break
			}
			shard.inputs++
			var err error
			if staging {
				for attempt := 0; ; attempt++ {
					var staged []stagedPair
					staged, err = runTask(in)
					if err == nil {
						for _, sp := range staged {
							emit(sp.key, sp.value)
						}
						break
					}
					if attempt >= j.cfg.MaxRetries || finalFailure(err) {
						break
					}
					retries.Add(1)
					if !sleepRetry(shardCtx, retryDelay(j.cfg, j.name(), i, attempt+1)) {
						return nil
					}
				}
			} else {
				err = runMap(in, emit)
			}
			if err != nil {
				if shardCtx.Err() != nil {
					return nil // job-wide cancellation, not an input failure
				}
				if failedNow := failed.Add(1); failedNow <= int64(j.cfg.MaxFailedInputs) {
					continue // poisoned or overrunning record skipped, within budget
				}
				return fmt.Errorf("%s: map input %d: %w", j.name(), i, err)
			}
			if shard.spill != nil && shard.buffered >= int64(j.cfg.SpillThreshold) {
				applyCombiner()
				if err := shard.spill.flush(shard.groups, shard.order); err != nil {
					return fmt.Errorf("%s: %w", j.name(), err)
				}
				shard.buffered = 0
			}
		}
		applyCombiner()
		return nil
	}

	var wg sync.WaitGroup
	errc := make(chan error, j.cfg.Mappers+j.cfg.Reducers)
	for w := 0; w < j.cfg.Mappers; w++ {
		wg.Add(1)
		//bw:guarded map workers are joined by wg.Wait below and cancelled via mapCtx; runShard registers with the job watchdog when one is configured
		go func(w int) {
			defer wg.Done()
			if err := runShard(mapCtx, w, shards[w], "map", &retriesTotal, &failedTotal); err != nil {
				// Only the first error is ever read; errc has capacity for
				// every worker, so the default arm never actually drops.
				select {
				case errc <- err:
				default:
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}

	var counters Counters
	for _, s := range shards {
		counters.InputRecords += s.inputs
		counters.MapOutputPairs += s.pairs
	}
	counters.Retries = retriesTotal.Load()
	counters.FailedInputs = failedTotal.Load()

	// ---- shuffle: merge map shards per partition --------------------------
	// Spill files replay first (in flush order), then each shard's
	// in-memory remainder, keeping key order deterministic.
	//
	// A spill file that fails validation is not fatal on the rerunnable
	// path: the file is quarantined (moved into SpillDir, outside the
	// ephemeral per-run root, so it survives the run for forensics) and
	// its producing shard is re-executed once into a fresh directory. Flush
	// boundaries are a pure function of input order and SpillThreshold, so
	// the rerun regenerates the same file sequence and only the corrupt
	// file's replacement is replayed; the original shard's intact files
	// and in-memory remainder are untouched. A replacement that fails
	// validation too aborts the job.
	rerunShards := make(map[int]*mapShard)
	var rerunRetries, rerunFailed atomic.Int64
	rerunShard := func(w int) (*mapShard, error) {
		if rs, ok := rerunShards[w]; ok {
			return rs, nil
		}
		rerunDir := filepath.Join(spillRoot, fmt.Sprintf("rerun-w%d", w))
		if err := os.MkdirAll(rerunDir, 0o755); err != nil {
			return nil, fmt.Errorf("%s: rerun dir: %w", j.name(), err)
		}
		rs := &mapShard{groups: make([]map[K][]V, nParts), order: make([][]K, nParts)}
		for p := range rs.groups {
			rs.groups[p] = make(map[K][]V)
		}
		rs.spill = newSpillWriter[K, V](rerunDir, w, nParts)
		counters.ShardReruns++
		if err := runShard(ctx, w, rs, "map-rerun", &rerunRetries, &rerunFailed); err != nil {
			return nil, err
		}
		rerunShards[w] = rs
		return rs, nil
	}
	partGroups := make([]map[K][]V, nParts)
	partOrder := make([][]K, nParts)
	for p := 0; p < nParts; p++ {
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
		partGroups[p] = make(map[K][]V)
		for w, s := range shards {
			if s.spill != nil {
				for fi, path := range s.spill.files[p] {
					err := replaySpill(path, partGroups[p], &partOrder[p])
					if err == nil {
						continue
					}
					if !rerunnable || !errors.Is(err, ErrSpillCorrupt) {
						return nil, fmt.Errorf("%s: %w", j.name(), err)
					}
					counters.CorruptSpills++
					qpath := filepath.Join(j.cfg.SpillDir,
						filepath.Base(spillRoot)+"-"+filepath.Base(path)+".quarantined")
					if qerr := os.Rename(path, qpath); qerr != nil {
						return nil, fmt.Errorf("%s: quarantine %s: %v (after %w)", j.name(), path, qerr, err)
					}
					rs, rerr := rerunShard(w)
					if rerr != nil {
						return nil, rerr
					}
					if fi >= len(rs.spill.files[p]) {
						return nil, fmt.Errorf("%s: map shard %d rerun produced no replacement for %s (%w)",
							j.name(), w, path, err)
					}
					if rerr := replaySpill(rs.spill.files[p][fi], partGroups[p], &partOrder[p]); rerr != nil {
						return nil, fmt.Errorf("%s: map shard %d corrupted its spills again: %w", j.name(), w, rerr)
					}
				}
			}
			for _, k := range s.order[p] {
				if cur, seen := partGroups[p][k]; !seen {
					partOrder[p] = append(partOrder[p], k)
					// Adopt the shard's slice outright: shards are never
					// read again after the shuffle, so keys seen by a
					// single shard (the common case) cross without a copy.
					partGroups[p][k] = s.groups[p][k]
				} else {
					partGroups[p][k] = append(cur, s.groups[p][k]...)
				}
			}
		}
		for _, vs := range partGroups[p] {
			counters.ShufflePairs += int64(len(vs))
		}
		counters.DistinctKeys += int64(len(partGroups[p]))
	}

	// ---- reduce phase ------------------------------------------------------
	partOutputs := make([][]O, nParts)
	partCh := make(chan int)
	redCtx, redCancel := context.WithCancel(ctx)
	defer redCancel()

	// runReduce executes the reduce function for one key, converting
	// panics into errors.
	runReduce := func(k K, vs []V, emit func(O)) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("reduce panic: %v", r)
			}
		}()
		if err := faultCheck(faultinject.PointMapreduceReduceTask); err != nil {
			return err
		}
		return j.reduce(k, vs, emit)
	}

	var rwg sync.WaitGroup
	for w := 0; w < j.cfg.Reducers; w++ {
		rwg.Add(1)
		go func(w int) {
			defer rwg.Done()
			var wk *guard.Worker
			if j.cfg.Watchdog != nil {
				wk = j.cfg.Watchdog.Worker(fmt.Sprintf("%s/reduce-%d", j.name(), w))
				defer wk.Done()
			}
			// runKey executes the reduce call for one key, collecting its
			// outputs into a fresh local slice returned by value, so
			// failed, timed-out, or abandoned attempts never leave
			// partial (or racing) output behind.
			runKey := func(p int, k K) ([]O, error) {
				call := func() ([]O, error) {
					var local []O
					if err := runReduce(k, partGroups[p][k], func(o O) {
						local = append(local, o)
					}); err != nil {
						return nil, err
					}
					return local, nil
				}
				if !j.cfg.guarded() {
					return call()
				}
				return guard.BoundWork(redCtx, wk, j.cfg.TaskTimeout, call)
			}
			for p := range partCh {
				var outs []O
				for ki, k := range partOrder[p] {
					if redCtx.Err() != nil {
						return
					}
					var kouts []O
					var err error
					for attempt := 0; ; attempt++ {
						kouts, err = runKey(p, k)
						if err == nil || attempt >= j.cfg.MaxRetries || finalFailure(err) {
							break
						}
						retriesTotal.Add(1)
						if !sleepRetry(redCtx, retryDelay(j.cfg, j.name(), p<<16|ki, attempt+1)) {
							return
						}
					}
					if err != nil {
						if redCtx.Err() != nil {
							return // job-wide cancellation, not a key failure
						}
						if failed := failedKeysTotal.Add(1); failed <= int64(j.cfg.MaxFailedKeys) {
							continue // key dropped, within budget
						}
						// First error wins; capacity covers every worker, so
						// the default arm never actually drops.
						select {
						case errc <- fmt.Errorf("%s: reduce key %v: %w", j.name(), k, err):
						default:
						}
						redCancel()
						return
					}
					outs = append(outs, kouts...)
				}
				partOutputs[p] = outs
			}
		}(w)
	}
feed:
	for p := 0; p < nParts; p++ {
		select {
		case partCh <- p:
		case <-redCtx.Done():
			break feed
		}
	}
	close(partCh)
	rwg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}

	counters.Retries = retriesTotal.Load() // include reduce-phase retries
	counters.FailedKeys = failedKeysTotal.Load()
	res := &Result[O]{Counters: counters}
	for p := 0; p < nParts; p++ {
		res.Outputs = append(res.Outputs, partOutputs[p]...)
	}
	res.Counters.OutputRecords = int64(len(res.Outputs))
	return res, nil
}

func (j *Job[I, K, V, O]) name() string {
	if j.cfg.Name != "" {
		return j.cfg.Name
	}
	return "mapreduce"
}

// SortOutputs orders outputs with the provided less function; a
// convenience for deterministic downstream processing and golden tests.
func SortOutputs[O any](outs []O, less func(a, b O) bool) {
	sort.SliceStable(outs, func(i, k int) bool { return less(outs[i], outs[k]) })
}
