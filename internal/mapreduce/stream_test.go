package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// sliceSource adapts a slice to RunStream's pull function, counting how
// many concurrent pulls it observes (must be 1: the engine serializes the
// source).
func sliceSource(lines []string) (func() (string, bool), *int32) {
	var mu sync.Mutex
	var concurrent, maxSeen int32
	i := 0
	return func() (string, bool) {
		mu.Lock()
		concurrent++
		if concurrent > maxSeen {
			maxSeen = concurrent
		}
		if i >= len(lines) {
			concurrent--
			mu.Unlock()
			return "", false
		}
		line := lines[i]
		i++
		concurrent--
		mu.Unlock()
		return line, true
	}, &maxSeen
}

// TestRunStreamMatchesRun: the streaming front end must produce exactly
// the word counts (and deterministic output order) of the batch Run over
// the same input, across worker counts.
func TestRunStreamMatchesRun(t *testing.T) {
	var lines []string
	for i := 0; i < 120; i++ {
		lines = append(lines, fmt.Sprintf("w%d common w%d tail", i%17, i%5))
	}
	for _, mappers := range []int{1, 2, 4} {
		cfg := JobConfig{Mappers: mappers, Reducers: 2}
		batch, err := wordCountJob(cfg).Run(context.Background(), lines)
		if err != nil {
			t.Fatal(err)
		}
		next, _ := sliceSource(lines)
		stream, err := wordCountJob(cfg).RunStream(context.Background(), next)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch.Outputs) != len(stream.Outputs) {
			t.Fatalf("mappers=%d: stream %d outputs, batch %d", mappers, len(stream.Outputs), len(batch.Outputs))
		}
		for i := range batch.Outputs {
			if batch.Outputs[i] != stream.Outputs[i] {
				t.Fatalf("mappers=%d output %d: stream %+v, batch %+v", mappers, i, stream.Outputs[i], batch.Outputs[i])
			}
		}
		if got, want := stream.Counters.InputRecords, batch.Counters.InputRecords; got != want {
			t.Errorf("mappers=%d: stream InputRecords=%d, batch %d", mappers, got, want)
		}
	}
}

// TestRunStreamSerializesSource: the pull function is shared by all map
// workers; the engine must never call it concurrently with itself.
func TestRunStreamSerializesSource(t *testing.T) {
	var lines []string
	for i := 0; i < 200; i++ {
		lines = append(lines, fmt.Sprintf("a b c %d", i))
	}
	next, maxSeen := sliceSource(lines)
	if _, err := wordCountJob(JobConfig{Mappers: 4}).RunStream(context.Background(), next); err != nil {
		t.Fatal(err)
	}
	if *maxSeen > 1 {
		t.Errorf("source pulled by %d goroutines concurrently", *maxSeen)
	}
}

// TestRunStreamMapError: a map failure aborts the streaming run like the
// batch run, with the error preserved.
func TestRunStreamMapError(t *testing.T) {
	boom := errors.New("map exploded")
	job := NewJob[string, string, int, kv](JobConfig{Mappers: 2},
		func(line string, emit Emitter[string, int]) error {
			if line == "bad" {
				return boom
			}
			emit(line, 1)
			return nil
		},
		func(key string, values []int, emit func(kv)) error {
			emit(kv{Key: key, Count: len(values)})
			return nil
		},
	)
	next, _ := sliceSource([]string{"ok", "bad", "fine"})
	if _, err := job.RunStream(context.Background(), next); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected map error", err)
	}
}

// TestRunStreamEmpty: an immediately-exhausted source is a valid run with
// no outputs.
func TestRunStreamEmpty(t *testing.T) {
	next, _ := sliceSource(nil)
	res, err := wordCountJob(JobConfig{Mappers: 2}).RunStream(context.Background(), next)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 0 {
		t.Fatalf("empty stream produced %d outputs", len(res.Outputs))
	}
}

// TestRunStreamCancellation: a canceled context stops the pull loop.
func TestRunStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	next := func() (string, bool) {
		n++
		if n == 10 {
			cancel()
		}
		return "line of words", true // infinite source; only cancellation ends it
	}
	if _, err := wordCountJob(JobConfig{Mappers: 2}).RunStream(ctx, next); err == nil {
		t.Fatal("canceled streaming run did not fail")
	}
	if n > 100000 {
		t.Fatalf("pull loop ran %d times after cancellation", n)
	}
}
