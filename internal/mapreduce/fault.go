package mapreduce

import "baywatch/internal/faultinject"

// faultHook, when non-nil, is consulted at internal failure points (spill
// writes and replays) so tests can inject deterministic I/O errors.
// Production runs leave it nil.
var faultHook func(point string) error

// SetFaultHook installs (or, with nil, removes) the fault-injection hook.
// Not safe to call while a job is running.
func SetFaultHook(hook func(point string) error) { faultHook = hook }

func faultCheck(point faultinject.Point) error {
	if faultHook == nil {
		return nil
	}
	return faultHook(string(point))
}
