package mapreduce

import (
	"baywatch/internal/faultinject"

	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// TestMapRetryRecoversTransientFailure: an input that fails twice and
// succeeds on the third attempt completes with MaxRetries=2, its output
// intact and the retries counted.
func TestMapRetryRecoversTransientFailure(t *testing.T) {
	var attempts atomic.Int64
	job := NewJob[string, string, int, kv](JobConfig{Mappers: 2, MaxRetries: 2},
		func(line string, emit Emitter[string, int]) error {
			if line == "flaky" && attempts.Add(1) <= 2 {
				return errors.New("transient")
			}
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		func(key string, values []int, emit func(kv)) error {
			emit(kv{Key: key, Count: len(values)})
			return nil
		},
	)
	res, err := job.Run(context.Background(), []string{"a b", "flaky", "a"})
	if err != nil {
		t.Fatalf("transient failure should be retried away: %v", err)
	}
	counts := map[string]int{}
	for _, o := range res.Outputs {
		counts[o.Key] = o.Count
	}
	want := map[string]int{"a": 2, "b": 1, "flaky": 1}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("counts = %v, want %v (emissions from failed attempts must not leak)", counts, want)
	}
	if res.Counters.Retries != 2 {
		t.Errorf("Retries = %d, want 2", res.Counters.Retries)
	}
	if res.Counters.FailedInputs != 0 {
		t.Errorf("FailedInputs = %d, want 0", res.Counters.FailedInputs)
	}
}

// TestPoisonedInputSkippedWithinBudget: a persistently failing input is
// skipped and counted when MaxFailedInputs allows it; the rest of the job
// completes.
func TestPoisonedInputSkippedWithinBudget(t *testing.T) {
	job := NewJob[string, string, int, kv](JobConfig{Mappers: 3, MaxRetries: 1, MaxFailedInputs: 1},
		func(line string, emit Emitter[string, int]) error {
			if line == "poison" {
				return errors.New("always fails")
			}
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		func(key string, values []int, emit func(kv)) error {
			emit(kv{Key: key, Count: len(values)})
			return nil
		},
	)
	res, err := job.Run(context.Background(), []string{"a", "poison", "a b"})
	if err != nil {
		t.Fatalf("poisoned input within budget should be skipped: %v", err)
	}
	counts := map[string]int{}
	for _, o := range res.Outputs {
		counts[o.Key] = o.Count
	}
	want := map[string]int{"a": 2, "b": 1}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	if res.Counters.FailedInputs != 1 {
		t.Errorf("FailedInputs = %d, want 1", res.Counters.FailedInputs)
	}
	if res.Counters.Retries != 1 {
		t.Errorf("Retries = %d, want 1", res.Counters.Retries)
	}
}

// TestPoisonedInputsBeyondBudgetAbort: one failure more than
// MaxFailedInputs aborts the job with the underlying error.
func TestPoisonedInputsBeyondBudgetAbort(t *testing.T) {
	job := NewJob[int, int, int, int](JobConfig{Mappers: 1, MaxFailedInputs: 1},
		func(n int, emit Emitter[int, int]) error {
			if n < 0 {
				return fmt.Errorf("bad record %d", n)
			}
			emit(n, 1)
			return nil
		},
		func(key int, values []int, emit func(int)) error {
			emit(key)
			return nil
		},
	)
	_, err := job.Run(context.Background(), []int{1, -1, 2, -2, 3})
	if err == nil {
		t.Fatal("expected abort when failed inputs exceed budget")
	}
	if !strings.Contains(err.Error(), "bad record") {
		t.Fatalf("error should carry the record failure: %v", err)
	}
}

// TestMapPanicIsolatedAsFailedInput: a panicking map call is converted to
// a failure and charged against the budget instead of crashing the
// process.
func TestMapPanicIsolatedAsFailedInput(t *testing.T) {
	job := NewJob[int, int, int, int](JobConfig{Mappers: 2, MaxFailedInputs: 1},
		func(n int, emit Emitter[int, int]) error {
			if n == 13 {
				panic("unlucky record")
			}
			emit(n, 1)
			return nil
		},
		func(key int, values []int, emit func(int)) error {
			emit(key)
			return nil
		},
	)
	res, err := job.Run(context.Background(), []int{1, 13, 2})
	if err != nil {
		t.Fatalf("panic should be isolated: %v", err)
	}
	if res.Counters.FailedInputs != 1 {
		t.Errorf("FailedInputs = %d, want 1", res.Counters.FailedInputs)
	}
	if len(res.Outputs) != 2 {
		t.Errorf("outputs = %v, want the two surviving records", res.Outputs)
	}
}

// TestMapPanicWithoutBudgetAborts: with no failure budget the panic
// surfaces as a job error (not a process crash).
func TestMapPanicWithoutBudgetAborts(t *testing.T) {
	job := NewJob[int, int, int, int](JobConfig{Mappers: 1},
		func(n int, emit Emitter[int, int]) error {
			panic("boom")
		},
		func(key int, values []int, emit func(int)) error {
			emit(key)
			return nil
		},
	)
	_, err := job.Run(context.Background(), []int{1})
	if err == nil || !strings.Contains(err.Error(), "map panic") {
		t.Fatalf("expected map panic error, got %v", err)
	}
}

// TestReduceRetryDoesNotDuplicateOutput: a reduce key that fails after
// emitting must retry without duplicating the partial emissions.
func TestReduceRetryDoesNotDuplicateOutput(t *testing.T) {
	var attempts atomic.Int64
	job := NewJob[int, int, int, int](JobConfig{Reducers: 1, MaxRetries: 1},
		func(n int, emit Emitter[int, int]) error {
			emit(n%2, n)
			return nil
		},
		func(key int, values []int, emit func(int)) error {
			for _, v := range values {
				emit(v)
			}
			// Fail the first attempt of key 0 AFTER emitting, to prove the
			// partial output is rolled back.
			if key == 0 && attempts.Add(1) == 1 {
				return errors.New("post-emission failure")
			}
			return nil
		},
	)
	res, err := job.Run(context.Background(), []int{0, 1, 2, 3})
	if err != nil {
		t.Fatalf("reduce retry should recover: %v", err)
	}
	if len(res.Outputs) != 4 {
		t.Fatalf("outputs = %v, want 4 values (no duplicates from the failed attempt)", res.Outputs)
	}
	if res.Counters.Retries != 1 {
		t.Errorf("Retries = %d, want 1", res.Counters.Retries)
	}
}

// TestReducePanicSurfacesAsError: reduce panics become job errors.
func TestReducePanicSurfacesAsError(t *testing.T) {
	job := NewJob[int, int, int, int](JobConfig{},
		func(n int, emit Emitter[int, int]) error {
			emit(n, n)
			return nil
		},
		func(key int, values []int, emit func(int)) error {
			panic("reduce boom")
		},
	)
	_, err := job.Run(context.Background(), []int{1, 2})
	if err == nil || !strings.Contains(err.Error(), "reduce panic") {
		t.Fatalf("expected reduce panic error, got %v", err)
	}
}

// TestCancellationMidReduce: cancelling the context while reducers run
// returns promptly with ctx.Err.
func TestCancellationMidReduce(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	job := NewJob[int, int, int, int](JobConfig{Reducers: 1},
		func(n int, emit Emitter[int, int]) error {
			emit(n, n)
			return nil
		},
		func(key int, values []int, emit func(int)) error {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return ctx.Err()
		},
	)
	done := make(chan error, 1)
	go func() {
		_, err := job.Run(ctx, []int{1, 2, 3, 4})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

// --- spill integrity ---------------------------------------------------

func writeTestSpill(t *testing.T) (path string, group map[string][]int, order []string) {
	t.Helper()
	dir := t.TempDir()
	path = filepath.Join(dir, "spill-test.gob")
	group = map[string][]int{"a": {1, 2}, "b": {3}}
	order = []string{"a", "b"}
	if err := writeSpillFile(path, group, order); err != nil {
		t.Fatal(err)
	}
	return path, group, order
}

func TestSpillRoundTripValidates(t *testing.T) {
	path, group, order := writeTestSpill(t)
	got := map[string][]int{}
	var gotOrder []string
	if err := replaySpill(path, got, &gotOrder); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, group) || !reflect.DeepEqual(gotOrder, order) {
		t.Fatalf("replay = %v/%v, want %v/%v", got, gotOrder, group, order)
	}
}

func TestSpillTruncationDetected(t *testing.T) {
	path, _, _ := writeTestSpill(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{len(data) - 1, len(data) - spillFooterLen - 1, spillFooterLen - 1, 0} {
		if err := os.WriteFile(path, data[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		got := map[string][]int{}
		var order []string
		err := replaySpill(path, got, &order)
		if !errors.Is(err, ErrSpillCorrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrSpillCorrupt", keep, err)
		}
		if len(got) != 0 || len(order) != 0 {
			t.Fatalf("corrupt replay leaked data: %v %v", got, order)
		}
	}
}

func TestSpillBitflipDetected(t *testing.T) {
	path, _, _ := writeTestSpill(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte; the checksum must catch it even when the gob
	// stream still decodes.
	data[len(data)-spillFooterLen-3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := map[string][]int{}
	var order []string
	if err := replaySpill(path, got, &order); !errors.Is(err, ErrSpillCorrupt) {
		t.Fatalf("bitflip: err = %v, want ErrSpillCorrupt", err)
	}
}

func TestSpillBadMagicDetected(t *testing.T) {
	path, _, _ := writeTestSpill(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(data[len(data)-spillFooterLen:], "XXXX")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := map[string][]int{}
	var order []string
	if err := replaySpill(path, got, &order); !errors.Is(err, ErrSpillCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrSpillCorrupt", err)
	}
}

// TestSpillFaultInjection: injected spill-write and spill-replay failures
// abort the job cleanly through the fault seam.
func TestSpillFaultInjection(t *testing.T) {
	for _, point := range []faultinject.Point{
		faultinject.PointMapreduceSpillWrite,
		faultinject.PointMapreduceSpillReplay,
	} {
		t.Run(string(point), func(t *testing.T) {
			injected := errors.New("disk full")
			SetFaultHook(func(p string) error {
				if p == string(point) {
					return injected
				}
				return nil
			})
			t.Cleanup(func() { SetFaultHook(nil) })

			var lines []string
			for i := 0; i < 500; i++ {
				lines = append(lines, fmt.Sprintf("w%d", i%7))
			}
			_, err := wordCountJob(JobConfig{Mappers: 2, SpillDir: t.TempDir(), SpillThreshold: 16}).
				Run(context.Background(), lines)
			if !errors.Is(err, injected) {
				t.Fatalf("expected injected spill error at %s, got %v", point, err)
			}
		})
	}
}
