package mapreduce

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"baywatch/internal/faultinject"
)

// Corrupt-spill recovery: ErrSpillCorrupt during shuffle replay must
// quarantine the file and re-execute the producing map shard once,
// failing the job only if the regenerated file is corrupt too.

// corruptionCfg spills aggressively so a small job produces several spill
// files per shard.
func corruptionCfg(dir string) JobConfig {
	// One reducer keeps partition replay serial, so a fault hook firing at
	// the first replay is guaranteed to run before any spill file has been
	// consumed (two reducers would race the hook's truncation).
	return JobConfig{
		Name:           "corruptible",
		Mappers:        2,
		Reducers:       1,
		PartitionBits:  2,
		SpillDir:       dir,
		SpillThreshold: 4,
	}
}

var corruptionLines = []string{
	"beacon beacon ping", "host dns poll", "ping ping jitter", "dns beacon tick",
	"poll host host", "tick jitter dns", "beacon poll ping", "jitter tick host",
	"dns dns beacon", "ping host tick", "poll poll jitter", "beacon host dns",
}

// spillFiles lists every live spill file under the job's spill root(s),
// sorted, including shard-rerun directories.
func spillFiles(t *testing.T, dir string) []string {
	t.Helper()
	var paths []string
	for _, pattern := range []string{
		filepath.Join(dir, "mrspill-*", "spill-*.gob"),
		filepath.Join(dir, "mrspill-*", "rerun-w*", "spill-*.gob"),
	} {
		m, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, m...)
	}
	sort.Strings(paths)
	return paths
}

func truncateFile(t *testing.T, path string, cut int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-cut); err != nil {
		t.Fatal(err)
	}
}

// TestSpillTruncatedFooterRecovered truncates one spill file into its
// footer between the map phase and its replay: the job must quarantine
// it, re-run the producing shard, and finish with the clean run's exact
// result.
func TestSpillTruncatedFooterRecovered(t *testing.T) {
	clean, err := wordCountJob(corruptionCfg(t.TempDir())).Run(context.Background(), corruptionLines)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var once sync.Once
	var corrupted string
	SetFaultHook(func(point string) error {
		if point == string(faultinject.PointMapreduceSpillReplay) {
			// First replay about to happen: all spills are on disk.
			once.Do(func() {
				paths := spillFiles(t, dir)
				if len(paths) == 0 {
					t.Error("no spill files written before replay")
					return
				}
				corrupted = paths[0]
				truncateFile(t, corrupted, 5) // cut into the 20-byte footer
			})
		}
		return nil
	})
	defer SetFaultHook(nil)

	res, err := wordCountJob(corruptionCfg(dir)).Run(context.Background(), corruptionLines)
	if err != nil {
		t.Fatalf("corruption not recovered: %v", err)
	}
	if corrupted == "" {
		t.Fatal("no spill file was corrupted; test exercised nothing")
	}
	// Quarantined files are moved out of the ephemeral per-run spill root
	// into SpillDir so they outlive the run.
	q, err := filepath.Glob(filepath.Join(dir, "*"+filepath.Base(corrupted)+".quarantined"))
	if err != nil || len(q) != 1 {
		t.Fatalf("corrupt spill not quarantined into SpillDir: matches=%v err=%v", q, err)
	}
	if res.Counters.CorruptSpills != 1 || res.Counters.ShardReruns != 1 {
		t.Fatalf("recovery counters: CorruptSpills=%d ShardReruns=%d, want 1/1",
			res.Counters.CorruptSpills, res.Counters.ShardReruns)
	}
	got := *res
	got.Counters.CorruptSpills, got.Counters.ShardReruns = 0, 0
	if !reflect.DeepEqual(&got, clean) {
		t.Fatalf("recovered result differs from clean run:\ngot  %+v\nwant %+v", &got, clean)
	}
}

// TestSpillPersistentCorruptionFails corrupts every spill file at every
// replay: the one bounded shard re-execution cannot help, so the job must
// fail rather than loop.
func TestSpillPersistentCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	SetFaultHook(func(point string) error {
		if point == string(faultinject.PointMapreduceSpillReplay) {
			for _, p := range spillFiles(t, dir) {
				if fi, err := os.Stat(p); err == nil && fi.Size() > 10 {
					truncateFile(t, p, fi.Size()-10)
				}
			}
		}
		return nil
	})
	defer SetFaultHook(nil)

	_, err := wordCountJob(corruptionCfg(dir)).Run(context.Background(), corruptionLines)
	if err == nil {
		t.Fatal("persistently corrupt spills did not fail the job")
	}
	if !errors.Is(err, ErrSpillCorrupt) {
		t.Fatalf("err = %v, want ErrSpillCorrupt", err)
	}
	if !strings.Contains(err.Error(), "corrupted its spills again") {
		t.Fatalf("err = %v, want the bounded-rerun failure", err)
	}
}

// TestRunStreamSpillCorruptionFails: the streaming path cannot re-run a
// shard (the pull iterator is consumed), so corruption stays fatal there.
func TestRunStreamSpillCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	var once sync.Once
	SetFaultHook(func(point string) error {
		if point == string(faultinject.PointMapreduceSpillReplay) {
			once.Do(func() {
				paths := spillFiles(t, dir)
				if len(paths) > 0 {
					truncateFile(t, paths[0], 5)
				}
			})
		}
		return nil
	})
	defer SetFaultHook(nil)

	i := 0
	next := func() (string, bool) {
		if i >= len(corruptionLines) {
			return "", false
		}
		i++
		return corruptionLines[i-1], true
	}
	_, err := wordCountJob(corruptionCfg(dir)).RunStream(context.Background(), next)
	if !errors.Is(err, ErrSpillCorrupt) {
		t.Fatalf("RunStream corruption: err = %v, want ErrSpillCorrupt", err)
	}
	if strings.Contains(err.Error(), "again") {
		t.Fatalf("RunStream attempted a shard rerun: %v", err)
	}
}
