package netflow

import (
	"reflect"
	"testing"
)

// FuzzParseRecord checks the flow parser never panics and is stable under
// format/parse.
func FuzzParseRecord(f *testing.F) {
	f.Add("100,101,10.0.0.1,40000,1.2.3.4,443,6,1234,7")
	f.Add("")
	f.Add(",,,,,,,,")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseRecord(line)
		if err != nil {
			return
		}
		again, err := ParseRecord(rec.Format())
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !reflect.DeepEqual(rec, again) {
			t.Fatal("format/parse not stable")
		}
	})
}
