// Package netflow models the NetFlow data source of the paper's
// discussion section: connection-level flow records exported at the
// perimeter. Flows expose beaconing timing just like proxy logs, but carry
// no domain names or content — so the language-model and URL-token filters
// do not apply, and destinations are identified by IP:port (the paper:
// "Netflow only provides connection level information, i.e., no domain
// names or additional content information").
package netflow

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"baywatch/internal/pipeline"
	"baywatch/internal/proxylog"
)

// Record is one unidirectional flow record (v5-style fields).
type Record struct {
	// Start and End are the flow's first/last packet times (Unix seconds).
	Start, End int64
	// SrcIP and DstIP are the flow endpoints.
	SrcIP, DstIP string
	// SrcPort and DstPort are the transport ports.
	SrcPort, DstPort int
	// Proto is the IP protocol number (6 TCP, 17 UDP).
	Proto int
	// Bytes and Packets are the flow volumes.
	Bytes, Packets int64
}

// ErrBadRecord is returned for malformed lines.
var ErrBadRecord = errors.New("netflow: malformed record")

// Format renders the record as a CSV line:
// start,end,srcip,srcport,dstip,dstport,proto,bytes,packets.
func (r *Record) Format() string {
	fields := []string{
		strconv.FormatInt(r.Start, 10),
		strconv.FormatInt(r.End, 10),
		r.SrcIP,
		strconv.Itoa(r.SrcPort),
		r.DstIP,
		strconv.Itoa(r.DstPort),
		strconv.Itoa(r.Proto),
		strconv.FormatInt(r.Bytes, 10),
		strconv.FormatInt(r.Packets, 10),
	}
	return strings.Join(fields, ",")
}

// ParseRecord parses a line produced by Format.
func ParseRecord(line string) (*Record, error) {
	fields := strings.Split(line, ",")
	if len(fields) != 9 {
		return nil, fmt.Errorf("%w: %d fields", ErrBadRecord, len(fields))
	}
	var r Record
	var err error
	if r.Start, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
		return nil, fmt.Errorf("%w: start: %v", ErrBadRecord, err)
	}
	if r.End, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return nil, fmt.Errorf("%w: end: %v", ErrBadRecord, err)
	}
	r.SrcIP = fields[2]
	if r.SrcPort, err = strconv.Atoi(fields[3]); err != nil {
		return nil, fmt.Errorf("%w: src port: %v", ErrBadRecord, err)
	}
	r.DstIP = fields[4]
	if r.DstPort, err = strconv.Atoi(fields[5]); err != nil {
		return nil, fmt.Errorf("%w: dst port: %v", ErrBadRecord, err)
	}
	if r.Proto, err = strconv.Atoi(fields[6]); err != nil {
		return nil, fmt.Errorf("%w: proto: %v", ErrBadRecord, err)
	}
	if r.Bytes, err = strconv.ParseInt(fields[7], 10, 64); err != nil {
		return nil, fmt.Errorf("%w: bytes: %v", ErrBadRecord, err)
	}
	if r.Packets, err = strconv.ParseInt(fields[8], 10, 64); err != nil {
		return nil, fmt.Errorf("%w: packets: %v", ErrBadRecord, err)
	}
	return &r, nil
}

// FromProxyTrace derives the flow records a perimeter exporter would have
// produced for the given web traffic. Destination IPs are synthesized
// deterministically from the domain (a stable per-domain fake address),
// reproducing the information loss the paper describes: many domains share
// infrastructure and the flow view cannot tell them apart.
func FromProxyTrace(records []*proxylog.Record) []*Record {
	out := make([]*Record, len(records))
	for i, r := range records {
		port := 80
		if r.Scheme == "https" {
			port = 443
		}
		out[i] = &Record{
			Start:   r.Timestamp,
			End:     r.Timestamp + 1,
			SrcIP:   r.ClientIP,
			SrcPort: 32768 + i%28000,
			DstIP:   fakeIPFor(r.Host),
			DstPort: port,
			Proto:   6,
			Bytes:   int64(r.BytesIn + r.BytesOut),
			Packets: int64(4 + (r.BytesIn+r.BytesOut)/1400),
		}
	}
	return out
}

// fakeIPFor maps a domain to a stable public-looking IPv4 address.
func fakeIPFor(domain string) string {
	h := fnv.New32a()
	_, _ = h.Write([]byte(strings.ToLower(domain)))
	v := h.Sum32()
	// Avoid 0/10/127/224+ first octets for plausibility.
	first := 13 + int(v>>24)%180
	if first == 127 {
		first = 128
	}
	return fmt.Sprintf("%d.%d.%d.%d", first, (v>>16)&0xff, (v>>8)&0xff, v&0xff)
}

// ToPairEvents converts flows into the pipeline's source-agnostic events:
// the pair is (source IP or MAC, destination IP:port). corr may be nil to
// use raw source IPs.
func ToPairEvents(records []*Record, corr *proxylog.Correlator) []pipeline.PairEvent {
	out := make([]pipeline.PairEvent, len(records))
	for i, r := range records {
		src := r.SrcIP
		if corr != nil {
			if mac, err := corr.MACFor(r.SrcIP, r.Start); err == nil {
				src = mac
			} else {
				src = "ip:" + r.SrcIP
			}
		}
		out[i] = pipeline.PairEvent{
			Source:      src,
			Destination: r.DstIP + ":" + strconv.Itoa(r.DstPort),
			Timestamp:   r.Start,
		}
	}
	return out
}
