package netflow

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"baywatch/internal/core"
	"baywatch/internal/mapreduce"
	"baywatch/internal/pipeline"
	"baywatch/internal/proxylog"
)

func TestRecordRoundTrip(t *testing.T) {
	r := &Record{
		Start: 1425303901, End: 1425303902,
		SrcIP: "10.1.2.3", SrcPort: 40123,
		DstIP: "93.184.216.34", DstPort: 443,
		Proto: 6, Bytes: 5321, Packets: 7,
	}
	got, err := ParseRecord(r.Format())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip: got %+v want %+v", got, r)
	}
}

func TestParseRecordErrors(t *testing.T) {
	good := (&Record{SrcIP: "a", DstIP: "b"}).Format()
	cases := []string{
		"",
		"1,2,3",
		strings.Replace(good, "0,", "x,", 1),
	}
	for _, line := range cases {
		if _, err := ParseRecord(line); !errors.Is(err, ErrBadRecord) {
			t.Errorf("ParseRecord(%q) err = %v", line, err)
		}
	}
	// Field-by-field numeric errors.
	fields := strings.Split(good, ",")
	for _, idx := range []int{0, 1, 3, 5, 6, 7, 8} {
		bad := append([]string(nil), fields...)
		bad[idx] = "zz"
		if _, err := ParseRecord(strings.Join(bad, ",")); !errors.Is(err, ErrBadRecord) {
			t.Errorf("field %d: err = %v", idx, err)
		}
	}
}

func TestFromProxyTrace(t *testing.T) {
	recs := []*proxylog.Record{
		{Timestamp: 100, ClientIP: "10.0.0.1", Host: "a.com", Scheme: "https", BytesIn: 100, BytesOut: 2000},
		{Timestamp: 200, ClientIP: "10.0.0.1", Host: "a.com", Scheme: "http", BytesIn: 50, BytesOut: 500},
		{Timestamp: 300, ClientIP: "10.0.0.2", Host: "b.com", Scheme: "https"},
	}
	flows := FromProxyTrace(recs)
	if len(flows) != 3 {
		t.Fatalf("flows = %d", len(flows))
	}
	if flows[0].DstPort != 443 || flows[1].DstPort != 80 {
		t.Errorf("ports = %d, %d", flows[0].DstPort, flows[1].DstPort)
	}
	// Same domain maps to the same fake IP; different domains differ.
	if flows[0].DstIP != flows[1].DstIP {
		t.Error("same domain mapped to different IPs")
	}
	if flows[0].DstIP == flows[2].DstIP {
		t.Error("different domains collided (unlikely)")
	}
	if flows[0].Bytes != 2100 {
		t.Errorf("bytes = %d", flows[0].Bytes)
	}
}

func TestFakeIPStableAndPlausible(t *testing.T) {
	a := fakeIPFor("example.com")
	if a != fakeIPFor("EXAMPLE.com") {
		t.Error("fake IP not case-stable")
	}
	first := strings.Split(a, ".")[0]
	if first == "0" || first == "10" || first == "127" {
		t.Errorf("implausible first octet: %s", a)
	}
}

func TestToPairEvents(t *testing.T) {
	flows := []*Record{{Start: 100, SrcIP: "10.0.0.1", DstIP: "1.2.3.4", DstPort: 443}}
	evs := ToPairEvents(flows, nil)
	if evs[0].Source != "10.0.0.1" || evs[0].Destination != "1.2.3.4:443" {
		t.Errorf("event = %+v", evs[0])
	}
	corr, err := proxylog.NewCorrelator([]proxylog.Lease{{IP: "10.0.0.1", MAC: "m", Start: 0, End: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if evs = ToPairEvents(flows, corr); evs[0].Source != "m" {
		t.Errorf("source = %q", evs[0].Source)
	}
}

// TestBeaconDetectableThroughFlowView: the timing signal survives the
// domain-less flow representation.
func TestBeaconDetectableThroughFlowView(t *testing.T) {
	var recs []*proxylog.Record
	for i := 0; i < 150; i++ {
		recs = append(recs, &proxylog.Record{Timestamp: int64(i * 120), ClientIP: "10.0.0.1", Host: "cc.evil", Scheme: "http"})
	}
	flows := FromProxyTrace(recs)
	sums, err := pipeline.ExtractSummariesFromEvents(context.Background(), ToPairEvents(flows, nil), 1, mapreduce.JobConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 {
		t.Fatalf("summaries = %d", len(sums))
	}
	res, err := core.NewDetector(core.DefaultConfig()).Detect(sums[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Periodic {
		t.Fatal("beacon invisible through flow view")
	}
	if p := res.DominantPeriods()[0]; p < 114 || p > 126 {
		t.Errorf("period = %v, want ~120", p)
	}
}
