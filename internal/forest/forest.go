package forest

import (
	"fmt"
	"math"
	"math/rand"
)

// Config controls forest training. The zero value is replaced by defaults
// matching the paper's prototype (200 trees).
type Config struct {
	// Trees is the ensemble size.
	Trees int
	// MaxDepth bounds individual trees.
	MaxDepth int
	// MinSamplesSplit stops splitting small nodes.
	MinSamplesSplit int
	// FeaturesPerSplit is the random-subspace size; 0 means sqrt(d).
	FeaturesPerSplit int
	// Seed makes training deterministic.
	Seed int64
}

func (c Config) withDefaults(d int) Config {
	if c.Trees <= 0 {
		c.Trees = 200
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinSamplesSplit <= 0 {
		c.MinSamplesSplit = 4
	}
	if c.FeaturesPerSplit <= 0 {
		c.FeaturesPerSplit = int(math.Ceil(math.Sqrt(float64(d))))
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Forest is a trained random forest for binary classification. It is
// immutable after training and safe for concurrent prediction.
type Forest struct {
	trees []*node
	// OOBError is the out-of-bag error estimate (NaN when no sample was
	// ever out of bag).
	OOBError float64
	cfg      Config
}

// Train fits a forest on feature matrix x (one row per sample) and binary
// labels y (0 benign, 1 malicious).
func Train(x [][]float64, y []int, cfg Config) (*Forest, error) {
	if err := validateTrainingData(x, y); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(len(x[0]))
	f := &Forest{cfg: cfg, trees: make([]*node, cfg.Trees)}

	n := len(x)
	tcfg := treeConfig{
		maxDepth:        cfg.MaxDepth,
		minSamplesSplit: cfg.MinSamplesSplit,
		featuresPerNode: cfg.FeaturesPerSplit,
	}
	// Out-of-bag vote accumulators.
	oobVotes := make([]float64, n)
	oobCounts := make([]int, n)

	rng := rand.New(rand.NewSource(cfg.Seed))
	inBag := make([]bool, n)
	idx := make([]int, n)
	for t := 0; t < cfg.Trees; t++ {
		for i := range inBag {
			inBag[i] = false
		}
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			idx[i] = j
			inBag[j] = true
		}
		tree := buildTree(x, y, idx, tcfg, rng, 0)
		f.trees[t] = tree
		for i := 0; i < n; i++ {
			if !inBag[i] {
				oobVotes[i] += tree.predictProb(x[i])
				oobCounts[i]++
			}
		}
	}

	wrong, counted := 0, 0
	for i := 0; i < n; i++ {
		if oobCounts[i] == 0 {
			continue
		}
		counted++
		pred := 0
		if oobVotes[i]/float64(oobCounts[i]) >= 0.5 {
			pred = 1
		}
		if pred != y[i] {
			wrong++
		}
	}
	if counted > 0 {
		f.OOBError = float64(wrong) / float64(counted)
	} else {
		f.OOBError = math.NaN()
	}
	return f, nil
}

// PredictProb returns the ensemble's probability that x belongs to class 1
// (malicious): the mean of the trees' leaf probabilities.
func (f *Forest) PredictProb(x []float64) (float64, error) {
	if len(f.trees) == 0 {
		return 0, fmt.Errorf("forest: not trained")
	}
	var sum float64
	for _, t := range f.trees {
		sum += t.predictProb(x)
	}
	return sum / float64(len(f.trees)), nil
}

// Predict returns the majority-vote class (0 or 1).
func (f *Forest) Predict(x []float64) (int, error) {
	p, err := f.PredictProb(x)
	if err != nil {
		return 0, err
	}
	if p >= 0.5 {
		return 1, nil
	}
	return 0, nil
}

// Uncertainty maps the predicted probability to [0, 1]: 0 when the forest
// is unanimous, 1 when it is split evenly. The paper ranks candidate cases
// by this value to direct manual review at the most ambiguous ones.
func (f *Forest) Uncertainty(x []float64) (float64, error) {
	p, err := f.PredictProb(x)
	if err != nil {
		return 0, err
	}
	return 1 - math.Abs(2*p-1), nil
}

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }
