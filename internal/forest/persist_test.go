package forest

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestForestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := twoBlobData(rng, 300, 5)
	f, err := Train(x, y, Config{Trees: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "models", "rf.gob.gz")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Trees() != f.Trees() {
		t.Fatalf("Trees = %d, want %d", loaded.Trees(), f.Trees())
	}
	if loaded.OOBError != f.OOBError && !(math.IsNaN(loaded.OOBError) && math.IsNaN(f.OOBError)) {
		t.Errorf("OOBError = %v, want %v", loaded.OOBError, f.OOBError)
	}
	for i := range x {
		p1, err1 := f.PredictProb(x[i])
		p2, err2 := loaded.PredictProb(x[i])
		if err1 != nil || err2 != nil || p1 != p2 {
			t.Fatalf("sample %d: prob %v vs %v (%v, %v)", i, p1, p2, err1, err2)
		}
	}
}

func TestForestSaveUntrained(t *testing.T) {
	var f Forest
	if err := f.Save(filepath.Join(t.TempDir(), "x.gob.gz")); err == nil {
		t.Error("expected error saving untrained forest")
	}
}

func TestForestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("expected error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("expected error for garbage file")
	}
}

func TestFlattenUnflattenDeepTree(t *testing.T) {
	// A pathological chain tree exercises the index linking.
	rng := rand.New(rand.NewSource(2))
	x := make([][]float64, 200)
	y := make([]int, 200)
	for i := range x {
		x[i] = []float64{float64(i) + rng.Float64()*0.1}
		y[i] = i % 2
	}
	f, err := Train(x, y, Config{Trees: 3, MaxDepth: 30, MinSamplesSplit: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tree := range f.trees {
		rebuilt, err := unflatten(flatten(tree))
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if rebuilt.predictProb(x[i]) != tree.predictProb(x[i]) {
				t.Fatal("rebuilt tree predicts differently")
			}
		}
	}
}

func TestUnflattenRejectsCorrupt(t *testing.T) {
	cases := [][]flatNode{
		{},
		{{FeatureIdx: 0, Left: 5, Right: 6}}, // out of range
		{{FeatureIdx: 0, Left: 0, Right: 0}}, // self-loop
		{{FeatureIdx: 0, Left: -1, Right: 1}, {FeatureIdx: -1}}, // bad left
	}
	for i, nodes := range cases {
		if _, err := unflatten(nodes); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
