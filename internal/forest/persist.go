package forest

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// Persistence: a trained forest serializes to gob (gzip-compressed) so the
// triage classifier can be trained once on a labeled window and reloaded
// for every subsequent run. Trees flatten into index-linked node arrays —
// gob needs exported fields and the in-memory node type is deliberately
// unexported.

// flatNode is the serialized form of one tree node. Left/Right index into
// the tree's node slice; -1 marks "none" (leaves).
type flatNode struct {
	FeatureIdx  int
	Threshold   float64
	Left, Right int32
	Prediction  int
	Prob        float64
}

// forestSnapshot is the on-disk format.
type forestSnapshot struct {
	Version  int
	Trees    [][]flatNode
	OOBError float64
	Config   Config
}

const forestSnapshotVersion = 1

func flatten(root *node) []flatNode {
	var out []flatNode
	var walk func(n *node) int32
	walk = func(n *node) int32 {
		idx := int32(len(out))
		out = append(out, flatNode{
			FeatureIdx: n.featureIdx,
			Threshold:  n.threshold,
			Left:       -1,
			Right:      -1,
			Prediction: n.prediction,
			Prob:       n.prob,
		})
		if n.featureIdx >= 0 {
			l := walk(n.left)
			r := walk(n.right)
			out[idx].Left = l
			out[idx].Right = r
		}
		return idx
	}
	walk(root)
	return out
}

func unflatten(nodes []flatNode) (*node, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("forest: empty tree")
	}
	built := make([]*node, len(nodes))
	// Nodes were emitted pre-order; children always follow parents, so a
	// reverse pass can link safely.
	for i := len(nodes) - 1; i >= 0; i-- {
		fn := nodes[i]
		n := &node{
			featureIdx: fn.FeatureIdx,
			threshold:  fn.Threshold,
			prediction: fn.Prediction,
			prob:       fn.Prob,
		}
		if fn.FeatureIdx >= 0 {
			if fn.Left < 0 || int(fn.Left) >= len(nodes) || fn.Right < 0 || int(fn.Right) >= len(nodes) {
				return nil, fmt.Errorf("forest: node %d has bad child indices (%d, %d)", i, fn.Left, fn.Right)
			}
			if int(fn.Left) <= i || int(fn.Right) <= i {
				return nil, fmt.Errorf("forest: node %d children do not follow it", i)
			}
			n.left = built[fn.Left]
			n.right = built[fn.Right]
			if n.left == nil || n.right == nil {
				return nil, fmt.Errorf("forest: node %d has unresolved children", i)
			}
		}
		built[i] = n
	}
	return built[0], nil
}

// Save writes the trained forest to path (gzip-compressed gob),
// atomically.
func (f *Forest) Save(path string) error {
	if len(f.trees) == 0 {
		return fmt.Errorf("forest: cannot save untrained forest")
	}
	snap := forestSnapshot{
		Version:  forestSnapshotVersion,
		Trees:    make([][]flatNode, len(f.trees)),
		OOBError: f.OOBError,
		Config:   f.cfg,
	}
	// KeyHash-like non-serializable fields do not exist in Config; it is
	// plain data.
	for i, t := range f.trees {
		snap.Trees[i] = flatten(t)
	}
	if math.IsNaN(snap.OOBError) {
		snap.OOBError = -1 // gob handles NaN, but -1 keeps the file greppable
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("forest: mkdir: %w", err)
	}
	tmp := path + ".tmp"
	file, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("forest: create: %w", err)
	}
	gz := gzip.NewWriter(file)
	if err := gob.NewEncoder(gz).Encode(snap); err != nil {
		file.Close()
		os.Remove(tmp)
		return fmt.Errorf("forest: encode: %w", err)
	}
	if err := gz.Close(); err != nil {
		file.Close()
		os.Remove(tmp)
		return fmt.Errorf("forest: gzip: %w", err)
	}
	if err := file.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("forest: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("forest: rename: %w", err)
	}
	return nil
}

// Load reads a forest previously written by Save.
func Load(path string) (*Forest, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("forest: open: %w", err)
	}
	defer file.Close()
	gz, err := gzip.NewReader(file)
	if err != nil {
		return nil, fmt.Errorf("forest: gzip: %w", err)
	}
	defer gz.Close()
	var snap forestSnapshot
	if err := gob.NewDecoder(gz).Decode(&snap); err != nil {
		return nil, fmt.Errorf("forest: decode: %w", err)
	}
	if snap.Version != forestSnapshotVersion {
		return nil, fmt.Errorf("forest: unsupported snapshot version %d", snap.Version)
	}
	f := &Forest{cfg: snap.Config, OOBError: snap.OOBError}
	if snap.OOBError < 0 {
		f.OOBError = math.NaN()
	}
	f.trees = make([]*node, len(snap.Trees))
	for i, flat := range snap.Trees {
		t, err := unflatten(flat)
		if err != nil {
			return nil, fmt.Errorf("forest: tree %d: %w", i, err)
		}
		f.trees[i] = t
	}
	return f, nil
}
