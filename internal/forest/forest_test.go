package forest

import (
	"math"
	"math/rand"
	"testing"
)

// twoBlobData generates a linearly separable binary data set.
func twoBlobData(rng *rand.Rand, n int, gap float64) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		label := i % 2
		cx := 0.0
		if label == 1 {
			cx = gap
		}
		x[i] = []float64{
			cx + rng.NormFloat64(),
			rng.NormFloat64(), // irrelevant feature
			cx*0.5 + rng.NormFloat64()*2,
		}
		y[i] = label
	}
	return x, y
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Error("expected error for empty training set")
	}
	if _, err := Train([][]float64{{1}}, []int{0, 1}, Config{}); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, err := Train([][]float64{{1}, {2, 3}}, []int{0, 1}, Config{}); err == nil {
		t.Error("expected error for ragged features")
	}
	if _, err := Train([][]float64{{1}}, []int{2}, Config{}); err == nil {
		t.Error("expected error for non-binary label")
	}
	if _, err := Train([][]float64{{}}, []int{0}, Config{}); err == nil {
		t.Error("expected error for zero-dimensional features")
	}
}

func TestTrainAndPredictSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := twoBlobData(rng, 400, 8)
	f, err := Train(x, y, Config{Trees: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i := range x {
		pred, err := f.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if pred != y[i] {
			wrong++
		}
	}
	if rate := float64(wrong) / float64(len(x)); rate > 0.02 {
		t.Errorf("training error %v on separable data, want ~0", rate)
	}
	if f.OOBError > 0.05 {
		t.Errorf("OOB error %v, want small", f.OOBError)
	}
	// Generalization on fresh points.
	testWrong := 0
	xt, yt := twoBlobData(rand.New(rand.NewSource(99)), 200, 8)
	for i := range xt {
		pred, _ := f.Predict(xt[i])
		if pred != yt[i] {
			testWrong++
		}
	}
	if rate := float64(testWrong) / float64(len(xt)); rate > 0.05 {
		t.Errorf("test error %v, want < 5%%", rate)
	}
}

func TestPredictProbBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := twoBlobData(rng, 100, 2) // overlapping blobs
	f, err := Train(x, y, Config{Trees: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		p, err := f.PredictProb(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("prob = %v", p)
		}
		u, err := f.Uncertainty(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if u < 0 || u > 1 {
			t.Fatalf("uncertainty = %v", u)
		}
		if math.Abs((1-math.Abs(2*p-1))-u) > 1e-12 {
			t.Fatalf("uncertainty inconsistent with prob")
		}
	}
}

func TestUncertaintyHighNearBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := twoBlobData(rng, 600, 6)
	f, err := Train(x, y, Config{Trees: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// A point deep in class 0 vs a point on the decision boundary.
	deep := []float64{-3, 0, -2}
	boundary := []float64{3, 0, 1.5}
	ud, _ := f.Uncertainty(deep)
	ub, _ := f.Uncertainty(boundary)
	if ud >= ub {
		t.Errorf("uncertainty deep (%v) should be below boundary (%v)", ud, ub)
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := twoBlobData(rng, 200, 4)
	f1, err := Train(x, y, Config{Trees: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Train(x, y, Config{Trees: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		p1, _ := f1.PredictProb(x[i])
		p2, _ := f2.PredictProb(x[i])
		if p1 != p2 {
			t.Fatalf("sample %d: probs differ %v vs %v", i, p1, p2)
		}
	}
	if f1.OOBError != f2.OOBError {
		t.Error("OOB errors differ across identical trainings")
	}
}

func TestTrainSingleClass(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	y := []int{1, 1, 1}
	f, err := Train(x, y, Config{Trees: 10})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := f.Predict([]float64{100, -5})
	if err != nil {
		t.Fatal(err)
	}
	if pred != 1 {
		t.Errorf("single-class forest predicted %d, want 1", pred)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults(16)
	if cfg.Trees != 200 {
		t.Errorf("Trees = %d, want 200 (paper's prototype)", cfg.Trees)
	}
	if cfg.FeaturesPerSplit != 4 {
		t.Errorf("FeaturesPerSplit = %d, want sqrt(16) = 4", cfg.FeaturesPerSplit)
	}
	if cfg.MaxDepth <= 0 || cfg.MinSamplesSplit <= 0 || cfg.Seed == 0 {
		t.Errorf("defaults missing: %+v", cfg)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := twoBlobData(rng, 300, 1) // hard data forces deep trees
	f, err := Train(x, y, Config{Trees: 10, MaxDepth: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, tree := range f.trees {
		if d := depthOf(tree); d > 3 {
			t.Errorf("tree %d depth %d exceeds max 3", i, d)
		}
	}
}

func TestPredictUntrained(t *testing.T) {
	var f Forest
	if _, err := f.PredictProb([]float64{1}); err == nil {
		t.Error("expected error predicting with empty forest")
	}
}

func TestForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	// The ensemble should generalize at least as well as a single deep
	// tree on noisy data — the motivation for using a forest (Sect. VI-B).
	rng := rand.New(rand.NewSource(8))
	mk := func(n int, r *rand.Rand) ([][]float64, []int) {
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			label := i % 2
			c := float64(label) * 2.5
			x[i] = []float64{
				c + r.NormFloat64()*1.5,
				r.NormFloat64(),
				c + r.NormFloat64()*3,
				r.NormFloat64() * 5,
			}
			y[i] = label
		}
		return x, y
	}
	xTrain, yTrain := mk(300, rng)
	xTest, yTest := mk(1000, rand.New(rand.NewSource(77)))

	errorRate := func(f *Forest) float64 {
		wrong := 0
		for i := range xTest {
			p, _ := f.Predict(xTest[i])
			if p != yTest[i] {
				wrong++
			}
		}
		return float64(wrong) / float64(len(xTest))
	}
	single, err := Train(xTrain, yTrain, Config{Trees: 1, Seed: 3, FeaturesPerSplit: 4})
	if err != nil {
		t.Fatal(err)
	}
	ensemble, err := Train(xTrain, yTrain, Config{Trees: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	se, ee := errorRate(single), errorRate(ensemble)
	if ee > se+0.02 {
		t.Errorf("ensemble error %v materially worse than single tree %v", ee, se)
	}
}

func TestTrees(t *testing.T) {
	x := [][]float64{{0}, {1}}
	y := []int{0, 1}
	f, err := Train(x, y, Config{Trees: 17})
	if err != nil {
		t.Fatal(err)
	}
	if f.Trees() != 17 {
		t.Errorf("Trees() = %d, want 17", f.Trees())
	}
}

func BenchmarkTrain200Trees(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x, y := twoBlobData(rng, 500, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, Config{Trees: 200, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x, y := twoBlobData(rng, 500, 4)
	f, err := Train(x, y, Config{Trees: 200, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Predict(x[i%len(x)]); err != nil {
			b.Fatal(err)
		}
	}
}
