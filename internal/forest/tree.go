// Package forest implements the random-forest classifier of the paper's
// investigation phase (Sect. VI-B): an ensemble of CART decision trees
// trained on bootstrap samples with random feature subsets at each split,
// classifying candidate beaconing cases as benign or malicious by majority
// vote. The vote fraction doubles as a confidence, whose complement is the
// uncertainty used to prioritize manual review (Fig. 11).
package forest

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// node is one CART tree node. Leaves have featureIdx == -1.
type node struct {
	featureIdx int
	threshold  float64
	left       *node
	right      *node
	// prediction is the majority class at a leaf; prob is the fraction of
	// training samples at the leaf with class 1.
	prediction int
	prob       float64
}

// treeConfig bounds tree growth.
type treeConfig struct {
	maxDepth        int
	minSamplesSplit int
	featuresPerNode int
}

// buildTree grows a CART tree on the sample set (by index into x/y).
func buildTree(x [][]float64, y []int, idx []int, cfg treeConfig, rng *rand.Rand, depth int) *node {
	n := len(idx)
	ones := 0
	for _, i := range idx {
		ones += y[i]
	}
	leaf := func() *node {
		pred := 0
		if 2*ones >= n {
			pred = 1
		}
		return &node{featureIdx: -1, prediction: pred, prob: float64(ones) / float64(n)}
	}
	if n < cfg.minSamplesSplit || depth >= cfg.maxDepth || ones == 0 || ones == n {
		return leaf()
	}

	bestFeature, bestThreshold, bestGain := -1, 0.0, 0.0
	parentImpurity := gini(ones, n)

	nFeatures := len(x[0])
	perm := rng.Perm(nFeatures)
	tried := cfg.featuresPerNode
	if tried > nFeatures {
		tried = nFeatures
	}
	values := make([]float64, 0, n)
	for _, f := range perm[:tried] {
		values = values[:0]
		for _, i := range idx {
			values = append(values, x[i][f])
		}
		sort.Float64s(values)
		// Candidate thresholds are midpoints between distinct consecutive
		// values.
		for v := 1; v < len(values); v++ {
			if values[v] == values[v-1] {
				continue
			}
			thr := (values[v] + values[v-1]) / 2
			lo, lo1, hi, hi1 := 0, 0, 0, 0
			for _, i := range idx {
				if x[i][f] <= thr {
					lo++
					lo1 += y[i]
				} else {
					hi++
					hi1 += y[i]
				}
			}
			if lo == 0 || hi == 0 {
				continue
			}
			w := float64(lo)/float64(n)*gini(lo1, lo) + float64(hi)/float64(n)*gini(hi1, hi)
			if gain := parentImpurity - w; gain > bestGain+1e-12 {
				bestGain = gain
				bestFeature = f
				bestThreshold = thr
			}
		}
	}
	if bestFeature < 0 {
		return leaf()
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x[i][bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	return &node{
		featureIdx: bestFeature,
		threshold:  bestThreshold,
		left:       buildTree(x, y, leftIdx, cfg, rng, depth+1),
		right:      buildTree(x, y, rightIdx, cfg, rng, depth+1),
	}
}

// gini returns the binary Gini impurity of a node with ones positives out
// of n samples.
func gini(ones, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(ones) / float64(n)
	return 2 * p * (1 - p)
}

// predictProb walks the tree and returns the leaf's class-1 fraction.
func (t *node) predictProb(x []float64) float64 {
	for t.featureIdx >= 0 {
		if x[t.featureIdx] <= t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.prob
}

// depthOf reports the maximum depth of the tree (for tests).
func depthOf(t *node) int {
	if t == nil || t.featureIdx < 0 {
		return 0
	}
	l, r := depthOf(t.left), depthOf(t.right)
	return 1 + int(math.Max(float64(l), float64(r)))
}

// validateTrainingData checks shape invariants shared by tree and forest
// training.
func validateTrainingData(x [][]float64, y []int) error {
	if len(x) == 0 {
		return fmt.Errorf("forest: empty training set")
	}
	if len(x) != len(y) {
		return fmt.Errorf("forest: %d samples but %d labels", len(x), len(y))
	}
	d := len(x[0])
	if d == 0 {
		return fmt.Errorf("forest: zero-dimensional features")
	}
	for i, row := range x {
		if len(row) != d {
			return fmt.Errorf("forest: sample %d has %d features, want %d", i, len(row), d)
		}
	}
	for i, label := range y {
		if label != 0 && label != 1 {
			return fmt.Errorf("forest: label %d of sample %d not in {0, 1}", label, i)
		}
	}
	return nil
}
