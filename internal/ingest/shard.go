package ingest

import (
	"fmt"

	"baywatch/internal/proxylog"
)

// PlanShards turns a list of log files into scan units: each splittable
// file is divided into up to splitsPerFile byte-range splits, each
// unsplittable (gzip) file becomes one whole-file shard. splitsPerFile
// <= 1 plans one shard per file. The plan preserves input order —
// shard i of file f precedes shard j > i — so per-shard stats can be
// reported deterministically even though scanning is parallel.
func PlanShards(paths []string, splitsPerFile int) ([]proxylog.Split, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("ingest: no input files")
	}
	shards := make([]proxylog.Split, 0, len(paths))
	for _, p := range paths {
		sp, err := proxylog.SplitFile(p, splitsPerFile)
		if err != nil {
			return nil, err
		}
		shards = append(shards, sp...)
	}
	return shards, nil
}
