// Package ingest is the sharded streaming ingest layer: it scans N log
// shards (whole files, or byte-range splits of splittable files) in
// parallel workers, parses lines zero-copy into per-worker record views,
// interns source/destination/path strings through a sharded symbol table
// so pair identity is a pair of uint32 IDs instead of a concatenated
// "src|dst" string, and hash-partitions events by pair ID into per-shard
// accumulators that append timestamps directly into
// timeseries.ActivitySummary builders.
//
// This mirrors the paper's evaluation architecture (Sect. VI: log
// ingestion sharded across thousands of Hadoop mappers) at process scale:
// the full corpus is never materialized as records or events — the only
// per-record state that crosses the scan/aggregate boundary is a 20-byte
// (pairID, timestamp, pathID) tuple — so ingest saturates all cores on
// multi-GB corpora instead of serializing on a single parse loop. The
// result is equivalent to the batch proxylog.ReadAll + pipeline extraction
// path; pipeline.RunStream's differential tests pin the contract.
package ingest

import (
	"hash/maphash"
	"sync"
)

// symShardBits selects the symbol-table shard from a string's hash; 32
// shards keep lock contention negligible at ingest worker counts.
const symShardBits = 5

// SymbolTable interns strings to dense uint32 IDs. It is sharded by
// string hash: each shard has its own lock, map and string store, and an
// ID encodes (index within shard, shard) so lookups never touch another
// shard's lock. Safe for concurrent use; IDs are stable for the table's
// lifetime but NOT stable across tables or runs — they are in-memory
// identity, never serialized.
type SymbolTable struct {
	shards [1 << symShardBits]symShard
}

type symShard struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string
}

// NewSymbolTable returns an empty table.
func NewSymbolTable() *SymbolTable {
	t := &SymbolTable{}
	for i := range t.shards {
		t.shards[i].ids = make(map[string]uint32)
	}
	return t
}

// Intern returns the ID for the string spelled by b, assigning one on
// first sight. The fast path (symbol already present) takes a shared
// lock and does not allocate: the map lookup converts b without copying.
//
//bw:noalloc per-record hot path; the insert slow path is in symShard.intern
func (t *SymbolTable) Intern(b []byte) uint32 {
	return t.internHash(b, hashBytes(b))
}

// internHash is Intern with the hash already computed — the per-worker
// cache computes it once for both its probe and the shard selection.
//
//bw:noalloc per-record hot path; the insert slow path is in symShard.intern
func (t *SymbolTable) internHash(b []byte, h uint64) uint32 {
	shard := uint32(h & (1<<symShardBits - 1))
	sh := &t.shards[shard]
	sh.mu.RLock()
	id, ok := sh.ids[string(b)]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	return sh.intern(string(b), shard)
}

// InternString is Intern for an already-materialized string (resolved
// correlator identities, API boundaries).
func (t *SymbolTable) InternString(s string) uint32 {
	shard := uint32(hashString(s) & (1<<symShardBits - 1))
	sh := &t.shards[shard]
	sh.mu.RLock()
	id, ok := sh.ids[s]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	return sh.intern(s, shard)
}

// intern is the insert slow path: take the write lock, re-check, append.
func (sh *symShard) intern(s string, shard uint32) uint32 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.ids[s]; ok {
		return id
	}
	idx := uint32(len(sh.strs))
	sh.strs = append(sh.strs, s)
	id := idx<<symShardBits | shard
	sh.ids[s] = id
	return id
}

// Lookup resolves an ID back to its string. IDs come only from this
// table's Intern calls; an unknown ID panics (it is a program bug, not
// an input condition — malformed input can never mint an ID).
func (t *SymbolTable) Lookup(id uint32) string {
	sh := &t.shards[id&(1<<symShardBits-1)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.strs[id>>symShardBits]
}

// Len returns the number of interned symbols.
func (t *SymbolTable) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		n += len(sh.strs)
		sh.mu.RUnlock()
	}
	return n
}

// symSeed is the process-wide symbol hash seed. IDs and shard placement
// are in-memory identity only (never serialized), so a per-process seed
// is safe and hardens the shard distribution against crafted inputs.
var symSeed = maphash.MakeSeed()

// hashBytes hashes b with the runtime's hardware-accelerated string hash;
// one hash serves the per-worker cache probe and the shard selection.
func hashBytes(b []byte) uint64 { return maphash.Bytes(symSeed, b) }

func hashString(s string) uint64 { return maphash.String(symSeed, s) }

// symbolShard maps b to its shard index.
//
//bw:noalloc per-record hot path
func symbolShard(b []byte) uint64 {
	return hashBytes(b) & (1<<symShardBits - 1)
}

// symCacheBits sizes the per-worker cache: 1024 direct-mapped entries
// (32 KiB) comfortably hold a scan worker's working set of endpoint
// strings (client IPs, hosts, URL paths repeat heavily within a shard).
const symCacheBits = 10

type symCacheEntry struct {
	// hash is the symbol's full hash with bit 0 forced to 1, so the zero
	// value (empty slot) never matches a probe.
	hash uint64
	id   uint32
	// s is the table's canonical string for id — never an alias of a scan
	// buffer.
	s string
}

// symCache is a scan worker's private, direct-mapped, lock-free cache in
// front of a SymbolTable: a hit costs one hash and one string compare,
// with none of the shared table's lock traffic. Misses fall through to
// the table, so a cache is never wrong, only cold. Caches are pooled and
// keep their entries across ingests over the same table (IDs are
// append-only, so stale entries cannot exist).
type symCache struct {
	tab     *SymbolTable
	entries [1 << symCacheBits]symCacheEntry
}

var symCachePool = sync.Pool{New: func() any { return new(symCache) }}

// borrowSymCache returns a pooled cache bound to tab, flushing it only
// when it last served a different table.
//
//bw:pool-handoff ownership passes to the scan worker, which Puts the cache back when its shard queue drains
func borrowSymCache(tab *SymbolTable) *symCache {
	c := symCachePool.Get().(*symCache)
	if c.tab != tab {
		*c = symCache{tab: tab}
	}
	return c
}

// id interns b through the cache. The top hash bits index the cache (the
// bottom bits select the table shard, so using them here would alias
// whole shards onto single slots).
//
//bw:noalloc per-record hot path
func (c *symCache) id(b []byte) uint32 {
	h := hashBytes(b)
	e := &c.entries[h>>(64-symCacheBits)]
	key := h | 1
	if e.hash == key && e.s == string(b) {
		return e.id
	}
	id := c.tab.internHash(b, h)
	*e = symCacheEntry{hash: key, id: id, s: c.tab.Lookup(id)}
	return id
}

// PairID identifies a communication pair by its interned source and
// destination symbols. It replaces the "src|dst" concatenated string as
// the pipeline's hot-path pair identity: 8 bytes, comparable, and immune
// to separator ambiguity (a source or destination containing '|' can
// never collide with a different pair).
type PairID struct {
	Src, Dst uint32
}

// PairHash mixes a PairID into a well-distributed 64-bit hash
// (splitmix64 finalizer), used for shuffle partitioning in both the
// ingest accumulators and the mapreduce extraction job.
func PairHash(p PairID) uint64 {
	x := uint64(p.Src)<<32 | uint64(p.Dst)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
