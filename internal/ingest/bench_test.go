// Benchmarks for the sharded streaming ingest, including the sequential
// batch baseline it is gated against (cmd/benchgate): the acceptance bar
// is BenchmarkIngestToSummaries sustaining a multiple of
// BenchmarkBatchToSummaries' record throughput with ≤2 allocs/record in
// the steady state (warm symbol table).
package ingest_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"baywatch/internal/corpus"
	"baywatch/internal/ingest"
	"baywatch/internal/langmodel"
	"baywatch/internal/pipeline"
	"baywatch/internal/proxylog"
)

// benchCorpus writes a deterministic multi-pair proxy log and returns its
// path and record count. 48 pairs × 64 events keeps one benchmark
// iteration in the low milliseconds while still exercising interning,
// partitioning and summary building across many runs.
func benchCorpus(tb testing.TB) (string, int) {
	tb.Helper()
	dir := tb.TempDir()
	path := filepath.Join(dir, "bench.log")
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	n := 0
	for i := 0; i < 64; i++ {
		for p := 0; p < 48; p++ {
			r := proxylog.Record{
				Timestamp: int64(1425300000 + i*97 + p), // distinct per pair
				ClientIP:  fmt.Sprintf("10.8.%d.%d", p/16, p%16),
				Method:    "GET", Scheme: "http",
				Host:   fmt.Sprintf("svc-%02d.example.com", p%24),
				Path:   fmt.Sprintf("/api/v1/poll?id=%d", p%6),
				Status: 200, BytesOut: 512, BytesIn: 128,
				UserAgent: "agent/1.0 (bench)",
			}
			fmt.Fprintln(f, r.Format())
			n++
		}
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
	return path, n
}

// BenchmarkIngestParse is the scan layer alone: split the corpus four
// ways and stream every line through the zero-copy parser with a no-op
// handler. The allocs/op it reports is the parse loop's entire footprint.
func BenchmarkIngestParse(b *testing.B) {
	path, n := benchCorpus(b)
	shards, err := ingest.PlanShards([]string{path}, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		records := 0
		for _, sp := range shards {
			stats, err := proxylog.ForEachSplit(sp, 0, func(v *proxylog.RecordView) error { return nil })
			if err != nil {
				b.Fatal(err)
			}
			records += stats.Records
		}
		if records != n {
			b.Fatalf("scanned %d records, want %d", records, n)
		}
	}
	b.ReportMetric(float64(n), "records/op")
}

// BenchmarkIngestToSummaries is the tentpole number: the full sharded
// ingest (4 shards, 4 workers) from bytes on disk to sorted activity
// summaries, with a warm symbol table modelling the ops loop's
// steady state. Compare with BenchmarkBatchToSummaries.
func BenchmarkIngestToSummaries(b *testing.B) {
	path, n := benchCorpus(b)
	shards, err := ingest.PlanShards([]string{path}, 4)
	if err != nil {
		b.Fatal(err)
	}
	syms := ingest.NewSymbolTable()
	ctx := context.Background()
	cfg := ingest.Config{Workers: 4, MaxBadLines: 0, Symbols: syms}
	// Warm run: intern the corpus's symbols once, as the ops loop does.
	if _, err := ingest.Ingest(ctx, shards, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ingest.Ingest(ctx, shards, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Records != n {
			b.Fatalf("ingested %d records, want %d", res.Stats.Records, n)
		}
	}
	b.ReportMetric(float64(n), "records/op")
}

// BenchmarkBatchToSummaries is the sequential baseline the streaming
// path replaces: materialize every record (proxylog.ReadAll), convert to
// pair events, and run the batch MapReduce extraction job.
func BenchmarkBatchToSummaries(b *testing.B) {
	path, n := benchCorpus(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		records, err := proxylog.ReadAll(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(records) != n {
			b.Fatalf("read %d records, want %d", len(records), n)
		}
		sums, _, err := pipeline.ExtractSummariesCapped(ctx, records, nil, 1, 0, pipeline.Config{}.MapReduce)
		if err != nil {
			b.Fatal(err)
		}
		if len(sums) == 0 {
			b.Fatal("no summaries")
		}
	}
	b.ReportMetric(float64(n), "records/op")
}

var (
	benchLMOnce sync.Once
	benchLM     *langmodel.Model
	benchLMErr  error
)

func benchModel(tb testing.TB) *langmodel.Model {
	tb.Helper()
	benchLMOnce.Do(func() {
		benchLM, benchLMErr = langmodel.Train(corpus.PopularDomains(5000, 42))
	})
	if benchLMErr != nil {
		tb.Fatal(benchLMErr)
	}
	return benchLM
}

// BenchmarkPipelineEndToEnd runs the whole streaming pipeline — sharded
// scan through detection, indication and ranking — over the corpus.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	path, n := benchCorpus(b)
	shards, err := ingest.PlanShards([]string{path}, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipeline.Config{LM: benchModel(b)}
	opt := pipeline.StreamOptions{Workers: 4, Symbols: ingest.NewSymbolTable()}
	ctx := context.Background()
	if _, err := pipeline.RunStream(ctx, shards, nil, cfg, opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.RunStream(ctx, shards, nil, cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.InputEvents != n {
			b.Fatalf("pipeline saw %d events, want %d", res.Stats.InputEvents, n)
		}
	}
}
