package ingest

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"baywatch/internal/proxylog"
)

// FuzzIngestLine feeds one arbitrary line through a full sharded ingest
// alongside a known-good record. Whatever the bytes, the ingest must
// never panic, must reach the same accept/skip verdict as the batch
// parser, and must never corrupt the symbol table: the good record's
// pair comes out intact, and every interned endpoint round-trips.
// The seed corpus mirrors the proxylog parser fuzz targets so the two
// fuzzers share their interesting shapes.
func FuzzIngestLine(f *testing.F) {
	f.Add("2015-03-02 13:45:01 1425303901 10.8.1.2 GET http example.com /index.html?q=1 200 5321 411 \"Mozilla/5.0\"")
	f.Add("")
	f.Add("2015-03-02 13:45:01 1425303901 10.8.1.2 GET http h /p 200 1 2 \"ua\"")
	f.Add("a b c d e f g h i j k l m n")
	f.Add("d t +9223372036854775807 ip m s h /p -1 007 0 \"q\"")
	f.Add("d t 1 ip m s h /p 1_0 0 0 \"ua\"")
	good := testLineFuzz(1425303900, "10.9.9.9", "anchor.example", "/anchor")

	f.Fuzz(func(t *testing.T, line string) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.log")
		if err := os.WriteFile(path, []byte(good+"\n"+line+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		rec, parseErr := proxylog.ParseRecord(line)
		// Embedded newlines make the input several physical lines, each
		// with its own verdict; the per-record assertions below only apply
		// to single-line inputs. Panic and symbol-integrity checks always do.
		clean := !strings.ContainsAny(line, "\n\r") && len(line) < 1<<20
		res, err := Ingest(context.Background(),
			[]proxylog.Split{{Path: path, Offset: 0, Length: -1}},
			Config{Workers: 1, MaxBadLines: 64})
		if err != nil {
			// Only unscannable inputs (over-long physical lines, or more
			// malformed embedded lines than the budget) may error; a plain
			// malformed line is skipped.
			if !clean || parseErr != nil {
				return
			}
			t.Fatalf("ingest failed on a parseable line %q: %v", line, err)
		}

		if clean && parseErr == nil && res.Stats.Records != 2 {
			t.Fatalf("accepted line %q not ingested: stats %+v", line, res.Stats)
		}
		if clean && parseErr != nil && res.Stats.Records != 1 {
			t.Fatalf("rejected line %q changed record count: stats %+v", line, res.Stats)
		}
		if clean && rec != nil && res.Stats.Records == 2 {
			found := false
			for _, s := range res.Summaries {
				if s.Source == rec.ClientIP && s.Destination == rec.Host {
					found = true
				}
			}
			if !found {
				t.Fatalf("accepted record %q missing from summaries", line)
			}
		}

		// Symbol-table integrity: the anchor pair survives whatever the
		// fuzz line interned, and every summary endpoint round-trips.
		anchor := false
		for _, s := range res.Summaries {
			if id := res.Symbols.InternString(s.Source); res.Symbols.Lookup(id) != s.Source {
				t.Fatalf("source %q does not round-trip the symbol table", s.Source)
			}
			if id := res.Symbols.InternString(s.Destination); res.Symbols.Lookup(id) != s.Destination {
				t.Fatalf("destination %q does not round-trip the symbol table", s.Destination)
			}
			if s.Source == "10.9.9.9" && s.Destination == "anchor.example" {
				anchor = true
				if ts := s.Timestamps(); len(ts) == 0 || ts[0] != 1425303900 {
					t.Fatalf("anchor record corrupted: %v", ts)
				}
			}
		}
		if !anchor {
			t.Fatal("anchor record lost")
		}
	})
}

// testLineFuzz renders one well-formed log line (testLine without the
// *testing.T, usable from a fuzz target's setup).
func testLineFuzz(ts int64, src, host, path string) string {
	r := proxylog.Record{
		Timestamp: ts, ClientIP: src, Method: "GET", Scheme: "http",
		Host: host, Path: path, Status: 200, BytesOut: 1, BytesIn: 2,
		UserAgent: "ua/1.0",
	}
	return r.Format()
}
