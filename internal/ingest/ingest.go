package ingest

import (
	"cmp"
	"context"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"sync"

	"baywatch/internal/faultinject"
	"baywatch/internal/proxylog"
	"baywatch/internal/timeseries"
)

// Config parameterizes a sharded streaming ingest.
type Config struct {
	// Workers is the number of parallel scan (and aggregation) workers.
	// <= 0 means GOMAXPROCS.
	Workers int
	// Scale is the activity-summary time scale in seconds; <= 0 means 1,
	// matching the batch extraction default.
	Scale int64
	// MaxBadLines is the per-shard lenient budget: up to MaxBadLines
	// malformed lines per shard are skipped and counted. 0 is strict mode —
	// the first malformed line aborts the ingest. (The batch reader's
	// budget is per file; the streaming deviation is per shard, so a file
	// split four ways tolerates up to 4× the budget. Documented in
	// DESIGN.md §5f.)
	MaxBadLines int
	// MaxEventsPerPair, when > 0, truncates each pair to its earliest
	// MaxEventsPerPair events with explicit Truncation accounting, the
	// same load-shedding contract as guard.Config.MaxEventsPerPair.
	MaxEventsPerPair int
	// Partitions is the number of aggregation partitions events are
	// hash-distributed over; <= 0 means Workers.
	Partitions int
	// Correlator, when non-nil, resolves sources to device MACs through
	// the DHCP correlation (falling back to "ip:<addr>"), mirroring
	// Correlator.SourceID.
	Correlator *proxylog.Correlator
	// Symbols, when non-nil, is the symbol table to intern through —
	// reusing one across ingests (e.g. the ops loop's daily runs) keeps
	// symbol IDs warm and the steady state allocation-free. Nil means a
	// fresh table, returned in Result.Symbols.
	Symbols *SymbolTable
}

// Truncation records one pair whose event volume exceeded
// Config.MaxEventsPerPair and was truncated to its earliest Kept events.
type Truncation struct {
	Source, Destination string
	Kept, Dropped       int
}

// ShardStats is one shard's scan accounting.
type ShardStats struct {
	Split proxylog.Split
	proxylog.ReadStats
}

// Stats aggregates scan accounting across all shards.
type Stats struct {
	// Records is the total count of well-formed records ingested.
	Records int
	// SkippedLines is the total count of malformed lines skipped in
	// lenient mode.
	SkippedLines int
	// FirstSkipped describes the first skipped line of the first (in plan
	// order) shard that skipped any, for diagnostics.
	FirstSkipped string
	// Shards holds per-shard stats, in plan order.
	Shards []ShardStats
}

// Result is the output of an ingest: per-pair activity summaries built
// directly from the stream, sorted by (Source, Destination).
type Result struct {
	Summaries []*timeseries.ActivitySummary
	Truncated []Truncation
	Stats     Stats
	// Symbols is the table the run interned through (Config.Symbols, or
	// the fresh table created for the run).
	Symbols *SymbolTable
}

// pathNone marks an event with no URL path (empty in the log line).
const pathNone = ^uint32(0)

// pairEvent is the only per-record state that crosses the scan/aggregate
// boundary: interned pair identity, timestamp, interned path.
type pairEvent struct {
	pair PairID
	ts   int64
	path uint32
}

// ctxCheckStride is how many records a scan worker processes between
// context-cancellation checks.
const ctxCheckStride = 512

// eventBufs is one scan worker's per-partition event accumulators,
// pooled across ingests so the steady state (ops-loop daily runs,
// benchmark iterations) re-uses fully grown buffers instead of paying
// the growth reallocations every run.
type eventBufs struct {
	bufs [][]pairEvent
}

var eventBufPool = sync.Pool{New: func() any { return new(eventBufs) }}

// borrowEventBufs returns a pooled buffer set shaped for parts
// partitions, every buffer emptied but with its capacity retained.
//
//bw:pool-handoff ownership passes to Ingest, which Puts the set back after aggregation has drained it
func borrowEventBufs(parts int) *eventBufs {
	eb := eventBufPool.Get().(*eventBufs)
	if len(eb.bufs) != parts {
		eb.bufs = make([][]pairEvent, parts)
	}
	for i := range eb.bufs {
		eb.bufs[i] = eb.bufs[i][:0]
	}
	return eb
}

// flatPool recycles the per-partition scatter buffers of the aggregation
// phase.
var flatPool = sync.Pool{New: func() any { return new([]pairEvent) }}

// Ingest scans the shards in parallel, parses lines zero-copy, interns
// endpoint strings, and hash-partitions events by pair into per-partition
// accumulators that build timeseries.ActivitySummary values directly —
// no intermediate record or event materialization. The result is
// equivalent to reading all records and running the batch extraction
// job (see pipeline.RunStream's differential tests for the pinned
// contract).
func Ingest(ctx context.Context, shards []proxylog.Split, cfg Config) (*Result, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	parts := cfg.Partitions
	if parts <= 0 {
		parts = workers
	}
	syms := cfg.Symbols
	if syms == nil {
		syms = NewSymbolTable()
	}
	res := &Result{Symbols: syms}
	if len(shards) == 0 {
		return res, nil
	}
	if len(shards) < workers {
		workers = len(shards)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Scan phase: workers pull shards off a channel; each owns private
	// per-partition event buffers, so the scan hot path takes no locks
	// beyond the symbol table's sharded read locks.
	type indexedSplit struct {
		idx   int
		split proxylog.Split
	}
	shardCh := make(chan indexedSplit)
	go func() {
		defer close(shardCh)
		for i, sp := range shards {
			select {
			case shardCh <- indexedSplit{idx: i, split: sp}:
			case <-ctx.Done():
				return
			}
		}
	}()

	scanErrs := make([]error, len(shards))
	shardStats := make([]proxylog.ReadStats, len(shards))
	workerSets := make([]*eventBufs, workers)
	workerBufs := make([][][]pairEvent, workers)
	defer func() {
		// The event buffers go back to the pool only after aggregation has
		// read them (or the run aborted) — this deferred return covers
		// every exit path.
		for _, eb := range workerSets {
			eventBufPool.Put(eb)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		set := borrowEventBufs(parts)
		workerSets[w] = set
		bufs := set.bufs
		workerBufs[w] = bufs
		wg.Add(1)
		go func() {
			defer wg.Done()
			cache := borrowSymCache(syms)
			defer symCachePool.Put(cache)
			sw := scanWorker{
				ctx:   ctx,
				syms:  syms,
				cache: cache,
				corr:  cfg.Correlator,
				parts: bufs,
			}
			for sh := range shardCh {
				stats, err := sw.runShard(sh.split, cfg.MaxBadLines)
				shardStats[sh.idx] = stats
				if err != nil {
					scanErrs[sh.idx] = err
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()

	for i, err := range scanErrs {
		if err != nil {
			return nil, fmt.Errorf("ingest: shard %s: %w", shards[i], err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	for i, st := range shardStats {
		res.Stats.Shards = append(res.Stats.Shards, ShardStats{Split: shards[i], ReadStats: st})
		res.Stats.Records += st.Records
		res.Stats.SkippedLines += st.SkippedLines
		if res.Stats.FirstSkipped == "" && st.FirstSkipped != "" {
			res.Stats.FirstSkipped = fmt.Sprintf("%s: %s", shards[i], st.FirstSkipped)
		}
	}

	// Aggregation phase: each partition gathers its slice of every
	// worker's buffers, sorts by (pair, timestamp), and builds summaries
	// run by run. Partitions are independent, so they stride across the
	// same worker count.
	partSums := make([][]*timeseries.ActivitySummary, parts)
	partTruncs := make([][]Truncation, parts)
	aggErrs := make([]error, parts)
	aggWorkers := workers
	if parts < aggWorkers {
		aggWorkers = parts
	}
	wg = sync.WaitGroup{}
	for w := 0; w < aggWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := w; p < parts; p += aggWorkers {
				if err := ctx.Err(); err != nil {
					return
				}
				sums, truncs, err := aggregatePartition(p, workerBufs, syms, scale, cfg.MaxEventsPerPair)
				if err != nil {
					aggErrs[p] = err
					cancel()
					return
				}
				partSums[p], partTruncs[p] = sums, truncs
			}
		}(w)
	}
	wg.Wait()

	for p, err := range aggErrs {
		if err != nil {
			return nil, fmt.Errorf("ingest: partition %d: %w", p, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	for p := 0; p < parts; p++ {
		res.Summaries = append(res.Summaries, partSums[p]...)
		res.Truncated = append(res.Truncated, partTruncs[p]...)
	}
	sort.Slice(res.Summaries, func(i, j int) bool {
		a, b := res.Summaries[i], res.Summaries[j]
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Destination < b.Destination
	})
	sort.Slice(res.Truncated, func(i, j int) bool {
		a, b := res.Truncated[i], res.Truncated[j]
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Destination < b.Destination
	})
	return res, nil
}

// scanWorker is one scan goroutine's private state.
type scanWorker struct {
	ctx     context.Context
	syms    *SymbolTable
	cache   *symCache
	corr    *proxylog.Correlator
	parts   [][]pairEvent
	scratch []byte
	n       int // records since last ctx check
}

// runShard scans one split, converting panics (including injected ones)
// into errors so a pathological shard degrades the run instead of taking
// down the process — the same containment contract as mapreduce task
// workers.
func (sw *scanWorker) runShard(sp proxylog.Split, maxBad int) (stats proxylog.ReadStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("scan panic: %v", r)
		}
	}()
	if ferr := faultCheck(faultinject.PointIngestShardScan, sp.String()); ferr != nil {
		return stats, ferr
	}
	return proxylog.ForEachSplit(sp, maxBad, sw.handle)
}

// handle is the per-record hot path: intern endpoints, partition by pair
// hash, append the 20-byte event tuple. No per-record heap allocation in
// the steady state (symbols warm).
//
//bw:noalloc per-record scan hot path; buffer growth is amortized
func (sw *scanWorker) handle(v *proxylog.RecordView) error {
	sw.n++
	if sw.n >= ctxCheckStride {
		sw.n = 0
		if err := sw.ctx.Err(); err != nil {
			return err
		}
	}
	pair := PairID{Src: sw.sourceID(v), Dst: sw.cache.id(v.Host)}
	path := pathNone
	if len(v.Path) != 0 {
		path = sw.cache.id(v.Path)
	}
	e := pairEvent{pair: pair, ts: v.Timestamp, path: path}
	p := PairHash(pair) % uint64(len(sw.parts))
	buf := sw.parts[p]
	if len(buf) == cap(buf) {
		// Amortized growth; every other event is written in place below.
		buf = append(buf, e)
	} else {
		buf = buf[:len(buf)+1]
		buf[len(buf)-1] = e
	}
	sw.parts[p] = buf
	return nil
}

// sourceID interns the record's source identity: the raw client IP
// without a correlator, otherwise the DHCP-resolved MAC with the same
// "ip:<addr>" fallback as Correlator.SourceID.
func (sw *scanWorker) sourceID(v *proxylog.RecordView) uint32 {
	if sw.corr == nil {
		return sw.cache.id(v.ClientIP)
	}
	// Interning the IP first makes its canonical string available without
	// materializing a copy per record.
	ipID := sw.cache.id(v.ClientIP)
	if mac, err := sw.corr.MACFor(sw.syms.Lookup(ipID), v.Timestamp); err == nil {
		return sw.syms.InternString(mac)
	}
	sw.scratch = append(append(sw.scratch[:0], "ip:"...), v.ClientIP...)
	return sw.cache.id(sw.scratch)
}

// aggregatePartition builds the summaries of one partition: concatenate
// every worker's buffer for it, sort by (pair, timestamp), and walk the
// runs, feeding each pair's ordered timestamps straight into a summary
// builder. Truncation keeps the earliest maxEvents events (the beaconing
// onset) with explicit accounting, matching the batch extraction job.
func aggregatePartition(p int, workerBufs [][][]pairEvent, syms *SymbolTable, scale int64, maxEvents int) (sums []*timeseries.ActivitySummary, truncs []Truncation, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("aggregate panic: %v", r)
		}
	}()
	if ferr := faultCheck(faultinject.PointIngestAggregate, strconv.Itoa(p)); ferr != nil {
		return nil, nil, ferr
	}
	total := 0
	for _, bufs := range workerBufs {
		total += len(bufs[p])
	}
	if total == 0 {
		return nil, nil, nil
	}
	// Group by pair with a two-pass counting scatter rather than one
	// O(n log n) sort of the whole partition: count each pair's events,
	// carve a flat buffer into per-pair segments, scatter events into
	// place, then sort each (much smaller) segment by timestamp alone.
	idx := make(map[PairID]int, 64)
	var counts []int
	for _, bufs := range workerBufs {
		for _, e := range bufs[p] {
			gi, ok := idx[e.pair]
			if !ok {
				gi = len(counts)
				idx[e.pair] = gi
				counts = append(counts, 0)
			}
			counts[gi]++
		}
	}
	starts := make([]int, len(counts)+1)
	for gi, n := range counts {
		starts[gi+1] = starts[gi] + n
	}
	fp := flatPool.Get().(*[]pairEvent)
	defer flatPool.Put(fp)
	if cap(*fp) < total {
		*fp = make([]pairEvent, total)
	}
	flat := (*fp)[:total]
	cursor := make([]int, len(counts))
	copy(cursor, starts)
	for _, bufs := range workerBufs {
		for _, e := range bufs[p] {
			gi := idx[e.pair]
			flat[cursor[gi]] = e
			cursor[gi]++
		}
	}
	for gi := range counts {
		run := flat[starts[gi]:starts[gi+1]]
		slices.SortFunc(run, func(a, b pairEvent) int {
			return cmp.Compare(a.ts, b.ts)
		})
		src, dst := syms.Lookup(run[0].pair.Src), syms.Lookup(run[0].pair.Dst)
		if maxEvents > 0 && len(run) > maxEvents {
			truncs = append(truncs, Truncation{
				Source: src, Destination: dst,
				Kept: maxEvents, Dropped: len(run) - maxEvents,
			})
			run = run[:maxEvents]
		}
		b := timeseries.NewBuilder(src, dst, scale, len(run))
		for _, e := range run {
			b.Add(e.ts)
			if e.path != pathNone {
				b.AddURLPath(syms.Lookup(e.path))
			}
		}
		as, serr := b.Summary()
		if serr != nil {
			return nil, nil, serr
		}
		sums = append(sums, as)
	}
	return sums, truncs, nil
}
