package ingest

import (
	"fmt"
	"sync"
	"testing"
)

// TestInternRoundTrip pins the symbol-table contract: Intern and
// InternString agree, IDs are stable, and Lookup inverts them.
func TestInternRoundTrip(t *testing.T) {
	tab := NewSymbolTable()
	words := []string{"10.8.1.2", "example.com", "/index.html", "", "a|b", "ip:10.8.1.2"}
	ids := make([]uint32, len(words))
	for i, w := range words {
		ids[i] = tab.Intern([]byte(w))
	}
	for i, w := range words {
		if got := tab.Intern([]byte(w)); got != ids[i] {
			t.Errorf("Intern(%q) = %d on re-intern, want %d", w, got, ids[i])
		}
		if got := tab.InternString(w); got != ids[i] {
			t.Errorf("InternString(%q) = %d, want %d", w, got, ids[i])
		}
		if got := tab.Lookup(ids[i]); got != w {
			t.Errorf("Lookup(%d) = %q, want %q", ids[i], got, w)
		}
	}
	if tab.Len() != len(words) {
		t.Errorf("Len = %d, want %d", tab.Len(), len(words))
	}
	// Distinct strings must get distinct IDs.
	seen := map[uint32]string{}
	for i, id := range ids {
		if prev, dup := seen[id]; dup {
			t.Errorf("id %d assigned to both %q and %q", id, prev, words[i])
		}
		seen[id] = words[i]
	}
}

// TestInternConcurrent hammers one table from many goroutines over an
// overlapping key set; run under -race this doubles as the locking proof.
func TestInternConcurrent(t *testing.T) {
	tab := NewSymbolTable()
	const goroutines, keys = 8, 200
	results := make([][]uint32, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]uint32, keys)
			for k := 0; k < keys; k++ {
				ids[k] = tab.Intern([]byte(fmt.Sprintf("sym-%03d", k)))
			}
			results[g] = ids
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for k := 0; k < keys; k++ {
			if results[g][k] != results[0][k] {
				t.Fatalf("goroutine %d got id %d for key %d, goroutine 0 got %d",
					g, results[g][k], k, results[0][k])
			}
		}
	}
	if tab.Len() != keys {
		t.Errorf("Len = %d, want %d", tab.Len(), keys)
	}
}

// TestInternNoAlloc is the proof behind the //bw:noalloc annotations on
// Intern and symbolShard: once a symbol is present, re-interning it takes
// the shared-lock fast path and allocates nothing.
func TestInternNoAlloc(t *testing.T) {
	tab := NewSymbolTable()
	b := []byte("warm.example.com")
	want := tab.Intern(b)
	if allocs := testing.AllocsPerRun(100, func() {
		if tab.Intern(b) != want {
			t.Fatal("warm intern changed id")
		}
	}); allocs != 0 {
		t.Errorf("warm Intern allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		symbolShard(b)
	}); allocs != 0 {
		t.Errorf("symbolShard allocates %.1f/op, want 0", allocs)
	}
	// internHash is the same fast path with the hash precomputed (the
	// per-worker cache's miss route).
	h := hashBytes(b)
	if allocs := testing.AllocsPerRun(100, func() {
		if tab.internHash(b, h) != want {
			t.Fatal("warm internHash changed id")
		}
	}); allocs != 0 {
		t.Errorf("warm internHash allocates %.1f/op, want 0", allocs)
	}
}

// TestPairIDSeparatorImmunity pins the satellite fix for the "src|dst"
// string key: values containing the old separator can no longer collide.
// With concatenated keys, ("a|b", "c") and ("a", "b|c") both spelled
// "a|b|c"; as interned PairIDs they are distinct.
func TestPairIDSeparatorImmunity(t *testing.T) {
	tab := NewSymbolTable()
	p1 := PairID{Src: tab.InternString("a|b"), Dst: tab.InternString("c")}
	p2 := PairID{Src: tab.InternString("a"), Dst: tab.InternString("b|c")}
	if p1 == p2 {
		t.Fatalf("pairs (a|b,c) and (a,b|c) collide as %v", p1)
	}
	if PairHash(p1) == PairHash(p2) {
		t.Errorf("PairHash collides for distinct pairs %v and %v", p1, p2)
	}
	// Asymmetric pairs must not collide either.
	p3 := PairID{Src: p1.Dst, Dst: p1.Src}
	if p1 != p3 && PairHash(p1) == PairHash(p3) {
		t.Errorf("PairHash collides for %v and its mirror", p1)
	}
}

// TestLookupUnknownPanics documents that Lookup of an ID the table never
// minted is a program bug, not an input condition.
func TestLookupUnknownPanics(t *testing.T) {
	tab := NewSymbolTable()
	defer func() {
		if recover() == nil {
			t.Error("Lookup of unminted ID did not panic")
		}
	}()
	tab.Lookup(1 << symShardBits) // index 1 in shard 0, never assigned
}
