package ingest

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"baywatch/internal/faultinject"
	"baywatch/internal/proxylog"
	"baywatch/internal/timeseries"
)

// testLine renders one well-formed proxy log line.
func testLine(ts int64, src, host, path string) string {
	r := proxylog.Record{
		Timestamp: ts, ClientIP: src, Method: "GET", Scheme: "http",
		Host: host, Path: path, Status: 200, BytesOut: 10, BytesIn: 20,
		UserAgent: "ua/1.0",
	}
	return r.Format()
}

// writeShard writes lines to a file under dir and returns its path.
func writeShard(t *testing.T, dir, name string, lines []string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	content := strings.Join(lines, "\n")
	if len(lines) > 0 {
		content += "\n"
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// refEvent is one event of the reference (batch-equivalent) extraction.
type refEvent struct {
	src, dst, path string
	ts             int64
}

// refSummaries is the straight-line reference implementation the sharded
// ingest must match: group events by pair, sort timestamps, build one
// summary per pair, sorted by (source, destination).
func refSummaries(t *testing.T, events []refEvent, scale int64, maxEvents int) ([]*timeseries.ActivitySummary, []Truncation) {
	t.Helper()
	type group struct {
		ts    []int64
		paths []string
	}
	groups := map[[2]string]*group{}
	for _, e := range events {
		key := [2]string{e.src, e.dst}
		g := groups[key]
		if g == nil {
			g = &group{}
			groups[key] = g
		}
		g.ts = append(g.ts, e.ts)
		g.paths = append(g.paths, e.path)
	}
	keys := make([][2]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var sums []*timeseries.ActivitySummary
	var truncs []Truncation
	for _, k := range keys {
		g := groups[k]
		sort.Slice(g.ts, func(i, j int) bool { return g.ts[i] < g.ts[j] })
		ts := g.ts
		if maxEvents > 0 && len(ts) > maxEvents {
			truncs = append(truncs, Truncation{
				Source: k[0], Destination: k[1],
				Kept: maxEvents, Dropped: len(ts) - maxEvents,
			})
			ts = ts[:maxEvents]
		}
		as, err := timeseries.FromTimestamps(k[0], k[1], ts, scale)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range g.paths {
			as.AddURLPath(p)
		}
		sums = append(sums, as)
	}
	return sums, truncs
}

// assertSummariesEqual compares ingest output against the reference,
// normalizing URL path order (arrival order is scheduling-dependent in
// the sharded scan; the set is not).
func assertSummariesEqual(t *testing.T, got, want []*timeseries.ActivitySummary) {
	t.Helper()
	if len(got) != len(want) {
		gotPairs := make([]string, len(got))
		for i, s := range got {
			gotPairs[i] = s.Source + "->" + s.Destination
		}
		t.Fatalf("%d summaries, want %d; got pairs %v", len(got), len(want), gotPairs)
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Source != w.Source || g.Destination != w.Destination {
			t.Fatalf("summary %d is %s->%s, want %s->%s", i, g.Source, g.Destination, w.Source, w.Destination)
		}
		gts, wts := g.Timestamps(), w.Timestamps()
		if len(gts) != len(wts) {
			t.Fatalf("%s->%s: %d events, want %d", g.Source, g.Destination, len(gts), len(wts))
		}
		for j := range wts {
			if gts[j] != wts[j] {
				t.Fatalf("%s->%s event %d: ts %d, want %d", g.Source, g.Destination, j, gts[j], wts[j])
			}
		}
		gp := append([]string(nil), g.URLPaths...)
		wp := append([]string(nil), w.URLPaths...)
		sort.Strings(gp)
		sort.Strings(wp)
		if strings.Join(gp, "\x00") != strings.Join(wp, "\x00") {
			t.Fatalf("%s->%s: paths %v, want %v", g.Source, g.Destination, gp, wp)
		}
	}
}

// testCorpus builds a deterministic multi-pair corpus spread over nFiles
// files, with interleaved pairs, distinct timestamps per pair, and a pair
// whose events carry no URL path.
func testCorpus(t *testing.T, dir string, nFiles int) (paths []string, events []refEvent) {
	t.Helper()
	pairs := []struct{ src, dst string }{
		{"10.0.0.1", "alpha.example"},
		{"10.0.0.1", "beta.example"},
		{"10.0.0.2", "alpha.example"},
		{"10.0.0.3", "gamma.example"},
		{"10.0.0.4", "delta.example"},
		{"10.0.0.5", "epsilon.example"},
	}
	lines := make([][]string, nFiles)
	for i := 0; i < 240; i++ {
		p := pairs[i%len(pairs)]
		ts := int64(1425300000 + i*7) // distinct timestamps per pair
		path := fmt.Sprintf("/p/%d", i%5)
		if p.dst == "gamma.example" {
			path = "" // no-path events must survive the round trip
		}
		events = append(events, refEvent{src: p.src, dst: p.dst, path: path, ts: ts})
		f := i % nFiles
		lines[f] = append(lines[f], testLine(ts, p.src, p.dst, path))
	}
	for f := 0; f < nFiles; f++ {
		paths = append(paths, writeShard(t, dir, fmt.Sprintf("f%d.log", f), lines[f]))
	}
	return paths, events
}

// TestIngestMatchesReference is the package-level differential test: the
// parallel sharded ingest must produce exactly the summaries a
// straight-line single-threaded extraction produces.
func TestIngestMatchesReference(t *testing.T) {
	dir := t.TempDir()
	paths, events := testCorpus(t, dir, 3)
	shards, err := PlanShards(paths, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) < 3 {
		t.Fatalf("only %d shards planned", len(shards))
	}
	for _, workers := range []int{1, 2, 4} {
		res, err := Ingest(context.Background(), shards, Config{Workers: workers, Partitions: 3})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want, _ := refSummaries(t, events, 1, 0)
		assertSummariesEqual(t, res.Summaries, want)
		if res.Stats.Records != len(events) {
			t.Errorf("workers=%d: Records = %d, want %d", workers, res.Stats.Records, len(events))
		}
		if len(res.Stats.Shards) != len(shards) {
			t.Errorf("workers=%d: %d shard stats, want %d", workers, len(res.Stats.Shards), len(shards))
		}
		if res.Symbols == nil {
			t.Error("Result.Symbols is nil")
		}
	}
}

// TestIngestTruncation: a pair over the per-pair cap keeps its earliest
// events with explicit accounting, exactly like the batch extraction job.
func TestIngestTruncation(t *testing.T) {
	dir := t.TempDir()
	var lines []string
	var events []refEvent
	for i := 0; i < 10; i++ {
		ts := int64(1425300000 + i*60)
		lines = append(lines, testLine(ts, "10.0.0.9", "heavy.example", "/h"))
		events = append(events, refEvent{src: "10.0.0.9", dst: "heavy.example", path: "/h", ts: ts})
	}
	for i := 0; i < 3; i++ {
		ts := int64(1425300007 + i*60)
		lines = append(lines, testLine(ts, "10.0.0.9", "light.example", "/l"))
		events = append(events, refEvent{src: "10.0.0.9", dst: "light.example", path: "/l", ts: ts})
	}
	path := writeShard(t, dir, "t.log", lines)
	shards, err := PlanShards([]string{path}, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Ingest(context.Background(), shards, Config{Workers: 4, MaxEventsPerPair: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, wantTruncs := refSummaries(t, events, 1, 4)
	assertSummariesEqual(t, res.Summaries, want)
	if len(res.Truncated) != 1 || res.Truncated[0] != wantTruncs[0] {
		t.Fatalf("Truncated = %+v, want %+v", res.Truncated, wantTruncs)
	}
	if res.Truncated[0].Kept != 4 || res.Truncated[0].Dropped != 6 {
		t.Fatalf("Truncated accounting = %+v", res.Truncated[0])
	}
}

// TestIngestLenientStats: malformed lines are skipped within the
// per-shard budget, counted per shard and in aggregate, with the first
// skip of the first (plan-order) affected shard surfaced for diagnostics.
func TestIngestLenientStats(t *testing.T) {
	dir := t.TempDir()
	good := writeShard(t, dir, "good.log", []string{
		testLine(1425300000, "10.0.0.1", "a.example", "/"),
	})
	mixed := writeShard(t, dir, "mixed.log", []string{
		testLine(1425300001, "10.0.0.1", "b.example", "/"),
		"THIS IS NOT A RECORD",
		testLine(1425300002, "10.0.0.1", "b.example", "/x"),
		"NEITHER IS THIS",
	})
	shards := []proxylog.Split{
		{Path: good, Offset: 0, Length: -1},
		{Path: mixed, Offset: 0, Length: -1},
	}
	res, err := Ingest(context.Background(), shards, Config{Workers: 2, MaxBadLines: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Records != 3 || res.Stats.SkippedLines != 2 {
		t.Fatalf("Stats = %+v, want 3 records / 2 skipped", res.Stats)
	}
	if !strings.Contains(res.Stats.FirstSkipped, "mixed.log") {
		t.Errorf("FirstSkipped = %q, want the shard named", res.Stats.FirstSkipped)
	}
	if len(res.Stats.Shards) != 2 {
		t.Fatalf("%d shard stats, want 2", len(res.Stats.Shards))
	}
	if res.Stats.Shards[0].SkippedLines != 0 || res.Stats.Shards[1].SkippedLines != 2 {
		t.Errorf("per-shard skips = %d/%d, want 0/2",
			res.Stats.Shards[0].SkippedLines, res.Stats.Shards[1].SkippedLines)
	}

	// One bad line over the budget aborts with the shard identified.
	if _, err := Ingest(context.Background(), shards, Config{Workers: 2, MaxBadLines: 1}); err == nil {
		t.Fatal("over-budget ingest did not fail")
	} else if !strings.Contains(err.Error(), "ingest: shard") {
		t.Errorf("error does not identify the shard: %v", err)
	}

	// Strict mode aborts on the first malformed line.
	if _, err := Ingest(context.Background(), shards, Config{Workers: 2}); err == nil {
		t.Fatal("strict ingest did not fail")
	}
}

// TestIngestCancellation: a canceled context aborts the run with the
// context's error.
func TestIngestCancellation(t *testing.T) {
	dir := t.TempDir()
	paths, _ := testCorpus(t, dir, 2)
	shards, err := PlanShards(paths, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Ingest(ctx, shards, Config{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestIngestEmptyAndSymbolReuse: no shards is an empty (not nil) result,
// and a caller-provided symbol table is used and returned, keeping IDs
// warm across ingests.
func TestIngestEmptyAndSymbolReuse(t *testing.T) {
	res, err := Ingest(context.Background(), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Summaries) != 0 || res.Symbols == nil {
		t.Fatalf("empty ingest: %d summaries, symbols=%v", len(res.Summaries), res.Symbols)
	}

	dir := t.TempDir()
	paths, events := testCorpus(t, dir, 2)
	shards, err := PlanShards(paths, 1)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewSymbolTable()
	first, err := Ingest(context.Background(), shards, Config{Workers: 2, Symbols: warm})
	if err != nil {
		t.Fatal(err)
	}
	if first.Symbols != warm {
		t.Fatal("Result.Symbols is not the provided table")
	}
	interned := warm.Len()
	if interned == 0 {
		t.Fatal("nothing interned into the provided table")
	}
	// A second ingest over the same corpus re-uses every symbol.
	second, err := Ingest(context.Background(), shards, Config{Workers: 2, Symbols: warm})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Len() != interned {
		t.Errorf("second ingest grew the table %d -> %d", interned, warm.Len())
	}
	want, _ := refSummaries(t, events, 1, 0)
	assertSummariesEqual(t, first.Summaries, want)
	assertSummariesEqual(t, second.Summaries, want)
}

// TestIngestCorrelator: with a DHCP correlator, sources resolve to MACs
// where a lease covers the timestamp and fall back to "ip:<addr>"
// otherwise — Correlator.SourceID's exact contract.
func TestIngestCorrelator(t *testing.T) {
	corr, err := proxylog.NewCorrelator([]proxylog.Lease{
		{IP: "10.0.0.1", MAC: "aa:bb:cc:00:00:01", Start: 1425300000, End: 1425400000},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := writeShard(t, dir, "c.log", []string{
		testLine(1425300010, "10.0.0.1", "a.example", "/"),
		testLine(1425300020, "10.0.0.1", "a.example", "/"),
		testLine(1425300030, "10.0.0.2", "b.example", "/"), // no lease
	})
	res, err := Ingest(context.Background(),
		[]proxylog.Split{{Path: path, Offset: 0, Length: -1}},
		Config{Workers: 1, Correlator: corr})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Summaries) != 2 {
		t.Fatalf("%d summaries, want 2", len(res.Summaries))
	}
	bySrc := map[string]string{}
	for _, s := range res.Summaries {
		bySrc[s.Source] = s.Destination
	}
	if bySrc["aa:bb:cc:00:00:01"] != "a.example" {
		t.Errorf("leased IP not resolved to MAC: %v", bySrc)
	}
	if bySrc["ip:10.0.0.2"] != "b.example" {
		t.Errorf("unleased IP missing ip: fallback: %v", bySrc)
	}
}

// faultCorpus builds a small two-shard corpus for the fault tests.
func faultCorpus(t *testing.T) []proxylog.Split {
	t.Helper()
	dir := t.TempDir()
	paths, _ := testCorpus(t, dir, 2)
	shards, err := PlanShards(paths, 1)
	if err != nil {
		t.Fatal(err)
	}
	return shards
}

// TestIngestScanFaultError: an injected error at PointIngestShardScan
// aborts the run with the shard identified and the cause preserved.
func TestIngestScanFaultError(t *testing.T) {
	shards := faultCorpus(t)
	injected := errors.New("injected scan failure")
	SetFaultHook(func(point string) error {
		if strings.HasPrefix(point, string(faultinject.PointIngestShardScan)+":") {
			return injected
		}
		return nil
	})
	t.Cleanup(func() { SetFaultHook(nil) })
	_, err := Ingest(context.Background(), shards, Config{Workers: 2})
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want the injected error", err)
	}
	if !strings.Contains(err.Error(), "ingest: shard") {
		t.Errorf("error does not identify the shard: %v", err)
	}
}

// TestIngestScanFaultCrash: a panic raised inside a shard scan (here a
// scheduled faultinject crash) is contained as that shard's error instead
// of taking down the process.
func TestIngestScanFaultCrash(t *testing.T) {
	shards := faultCorpus(t)
	sched := faultinject.New(1)
	sched.CrashAt(faultinject.PointIngestShardScan.Keyed(shards[0].String()), 1)
	SetFaultHook(sched.Hook())
	t.Cleanup(func() { SetFaultHook(nil) })
	_, err := Ingest(context.Background(), shards, Config{Workers: 2})
	if err == nil {
		t.Fatal("crashed scan did not fail the ingest")
	}
	if !strings.Contains(err.Error(), "scan panic") {
		t.Errorf("panic not converted to a scan error: %v", err)
	}
}

// TestIngestAggregateFaultError: an injected error at
// PointIngestAggregate aborts the run with the partition identified.
func TestIngestAggregateFaultError(t *testing.T) {
	shards := faultCorpus(t)
	injected := errors.New("injected aggregate failure")
	SetFaultHook(func(point string) error {
		if strings.HasPrefix(point, string(faultinject.PointIngestAggregate)+":") {
			return injected
		}
		return nil
	})
	t.Cleanup(func() { SetFaultHook(nil) })
	_, err := Ingest(context.Background(), shards, Config{Workers: 2})
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want the injected error", err)
	}
	if !strings.Contains(err.Error(), "ingest: partition") {
		t.Errorf("error does not identify the partition: %v", err)
	}
}

// TestIngestAggregateFaultCrash: a panic during partition aggregation is
// contained as that partition's error.
func TestIngestAggregateFaultCrash(t *testing.T) {
	shards := faultCorpus(t)
	sched := faultinject.New(1)
	sched.CrashAt(faultinject.PointIngestAggregate.Keyed("0"), 1)
	SetFaultHook(sched.Hook())
	t.Cleanup(func() { SetFaultHook(nil) })
	_, err := Ingest(context.Background(), shards, Config{Workers: 2, Partitions: 2})
	if err == nil {
		t.Fatal("crashed aggregation did not fail the ingest")
	}
	if !strings.Contains(err.Error(), "aggregate panic") {
		t.Errorf("panic not converted to an aggregate error: %v", err)
	}
}

// TestHandleNoAlloc is the proof behind the //bw:noalloc annotation on
// the scan worker's handle: with warm symbols and pre-grown partition
// buffers, appending a record allocates nothing.
func TestHandleNoAlloc(t *testing.T) {
	syms := NewSymbolTable()
	parts := make([][]pairEvent, 4)
	for p := range parts {
		parts[p] = make([]pairEvent, 0, 4096)
	}
	cache := borrowSymCache(syms)
	defer symCachePool.Put(cache)
	sw := &scanWorker{ctx: context.Background(), syms: syms, cache: cache, parts: parts}
	line := []byte(testLine(1425300000, "10.0.0.1", "warm.example", "/w"))
	var v proxylog.RecordView
	if err := proxylog.ParseRecordView(line, &v); err != nil {
		t.Fatal(err)
	}
	if err := sw.handle(&v); err != nil { // warm the symbol table
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := sw.handle(&v); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("handle allocates %.1f/op steady-state, want 0", allocs)
	}
}

// TestPlanShards pins the planner: every file contributes at least one
// shard, plan order follows argument order, and an empty plan is an
// error.
func TestPlanShards(t *testing.T) {
	dir := t.TempDir()
	paths, _ := testCorpus(t, dir, 2)
	shards, err := PlanShards(paths, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) < 2 {
		t.Fatalf("%d shards for 2 files", len(shards))
	}
	if shards[0].Path != paths[0] {
		t.Errorf("plan order broken: first shard is %s", shards[0].Path)
	}
	if _, err := PlanShards(nil, 4); err == nil {
		t.Error("empty plan did not error")
	}
}
