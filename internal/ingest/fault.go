package ingest

import "baywatch/internal/faultinject"

// faultHook, when non-nil, is consulted at the ingest fault points so
// tests can inject deterministic errors (or panics) into shard scanning
// and partition aggregation. Points are "<phase>:<key>", e.g.
// "ingest.shard.scan:file.log[0:512]". Production runs leave it nil.
var faultHook func(point string) error

// SetFaultHook installs (or, with nil, removes) the fault-injection hook.
// Not safe to call while an ingest is in flight.
func SetFaultHook(hook func(point string) error) { faultHook = hook }

func faultCheck(point faultinject.Point, key string) error {
	if faultHook == nil {
		return nil
	}
	return faultHook(string(point.Keyed(key)))
}
