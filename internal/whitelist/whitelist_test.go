package whitelist

import "testing"

func TestGlobalContains(t *testing.T) {
	g := NewGlobal([]string{"google.com", "Example.ORG", " spaced.net "})
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	cases := []struct {
		host string
		want bool
	}{
		{"google.com", true},
		{"GOOGLE.COM", true},
		{"www.google.com", true},
		{"cdn.img.google.com", true},
		{"example.org", true},
		{"spaced.net", true},
		{"notgoogle.com", false},
		{"google.com.evil.net", false},
		{"evil.com", false},
		{"com", false},
		{"", false},
	}
	for _, c := range cases {
		if got := g.Contains(c.host); got != c.want {
			t.Errorf("Contains(%q) = %v, want %v", c.host, got, c.want)
		}
	}
}

func TestGlobalNeverMatchesBareTLD(t *testing.T) {
	// Even with "com" (mis)listed, a suffix walk must not whitelist every
	// .com host via the bare TLD.
	g := NewGlobal([]string{"com"})
	if g.Contains("evil.com") {
		t.Error("bare TLD entry must not whitelist subdomains")
	}
	if !g.Contains("com") {
		t.Error("exact match of the entry itself should hold")
	}
}

func TestGlobalEmptyEntriesSkipped(t *testing.T) {
	g := NewGlobal([]string{"", "  ", "a.com"})
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
}

func TestLocalPopularity(t *testing.T) {
	l := NewLocal(0.01)
	l.Build(map[string]int{"proxy.corp.example": 900, "rare.example": 2}, 1000)
	if got := l.Popularity("proxy.corp.example"); got != 0.9 {
		t.Errorf("Popularity = %v, want 0.9", got)
	}
	if got := l.Popularity("PROXY.CORP.EXAMPLE"); got != 0.9 {
		t.Errorf("Popularity must be case-insensitive, got %v", got)
	}
	if got := l.Popularity("unknown.example"); got != 0 {
		t.Errorf("unknown destination popularity = %v", got)
	}
	if !l.Contains("proxy.corp.example") {
		t.Error("popular destination must be whitelisted")
	}
	if l.Contains("rare.example") {
		t.Error("0.2% destination must not pass a 1% threshold")
	}
}

func TestLocalThresholdBoundary(t *testing.T) {
	l := NewLocal(0.01)
	l.Build(map[string]int{"exact.example": 10}, 1000)
	if !l.Contains("exact.example") {
		t.Error("exactly at threshold should be whitelisted (>=)")
	}
	if l.Threshold() != 0.01 {
		t.Errorf("Threshold = %v", l.Threshold())
	}
}

func TestLocalDefaultsAndEmpty(t *testing.T) {
	l := NewLocal(0)
	if l.Threshold() != 0.01 {
		t.Errorf("default threshold = %v, want 0.01", l.Threshold())
	}
	if l.Popularity("x") != 0 {
		t.Error("empty store popularity must be 0")
	}
	if l.Contains("x") {
		t.Error("empty store must not whitelist")
	}
	l.Build(nil, 0)
	if l.Popularity("x") != 0 {
		t.Error("zero population popularity must be 0")
	}
}
