// Package whitelist implements BAYWATCH's whitelist analysis phase: a
// global whitelist of well-known popular domains (with suffix matching so
// cdn.google.com is covered by google.com) and a local, per-organization
// whitelist derived from destination popularity — destinations contacted by
// at least a fraction τ_P of all observed sources are considered
// organization-wide services and excluded from beaconing analysis.
package whitelist

import (
	"strings"
)

// Global is the popularity-list-based whitelist. Lookup is by exact match
// or by any registrable parent suffix.
type Global struct {
	domains map[string]struct{}
}

// NewGlobal builds a global whitelist from a domain list (e.g. the head of
// the popular-domain ranking). Entries are lowercased.
func NewGlobal(domains []string) *Global {
	g := &Global{domains: make(map[string]struct{}, len(domains))}
	for _, d := range domains {
		d = strings.ToLower(strings.TrimSpace(d))
		if d != "" {
			g.domains[d] = struct{}{}
		}
	}
	return g
}

// Len returns the number of whitelist entries.
func (g *Global) Len() int { return len(g.domains) }

// Contains reports whether host or any of its parent domains is
// whitelisted. An IP literal only matches exactly.
func (g *Global) Contains(host string) bool {
	host = strings.ToLower(strings.TrimSpace(host))
	for host != "" {
		if _, ok := g.domains[host]; ok {
			return true
		}
		dot := strings.IndexByte(host, '.')
		if dot < 0 {
			return false
		}
		host = host[dot+1:]
		// Never match a bare TLD: require at least one more label.
		if !strings.Contains(host, ".") {
			return false
		}
	}
	return false
}

// Local is the organization-specific popularity whitelist of Sect. III-B:
// it counts distinct sources per destination and whitelists destinations
// whose source share reaches the threshold τ_P. An absolute floor of
// MinSources keeps the ratio meaningful in small populations (the paper's
// 1% presumes a six-figure device count; at 1% of 60 hosts a single
// source would qualify).
type Local struct {
	threshold    float64
	minSources   int
	totalSources int
	perDest      map[string]int
}

// DefaultMinSources is the absolute source-count floor of the local
// whitelist.
const DefaultMinSources = 10

// NewLocal creates a local whitelist with threshold tau (fraction of the
// source population, e.g. 0.01 for 1%) and the default absolute floor.
func NewLocal(tau float64) *Local {
	return NewLocalWithFloor(tau, DefaultMinSources)
}

// NewLocalWithFloor creates a local whitelist with an explicit absolute
// source-count floor.
func NewLocalWithFloor(tau float64, minSources int) *Local {
	if tau <= 0 {
		tau = 0.01
	}
	if minSources < 1 {
		minSources = 1
	}
	return &Local{threshold: tau, minSources: minSources, perDest: make(map[string]int)}
}

// Build ingests the destination -> distinct-source counts and the total
// source population size.
func (l *Local) Build(destSources map[string]int, totalSources int) {
	l.perDest = make(map[string]int, len(destSources))
	for d, n := range destSources {
		l.perDest[strings.ToLower(d)] = n
	}
	l.totalSources = totalSources
}

// Popularity returns the fraction of sources that contacted the
// destination (0 when unknown or the population is empty).
func (l *Local) Popularity(dest string) float64 {
	if l.totalSources <= 0 {
		return 0
	}
	return float64(l.perDest[strings.ToLower(dest)]) / float64(l.totalSources)
}

// Contains reports whether the destination's popularity reaches τ_P and
// the absolute source-count floor.
func (l *Local) Contains(dest string) bool {
	if l.perDest[strings.ToLower(dest)] < l.minSources {
		return false
	}
	return l.Popularity(dest) >= l.threshold
}

// Threshold returns τ_P.
func (l *Local) Threshold() float64 { return l.threshold }
