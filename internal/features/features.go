// Package features extracts the classifier feature vector of the paper's
// Table II from a candidate beaconing case: series length, dominant
// period(s) and their power, similar-source count, and the statistics of
// the symbolized interval series — n-gram histogram, entropy, and gzip
// compressibility.
package features

import (
	"bytes"
	"compress/gzip"
	"math"

	"baywatch/internal/stats"
	"baywatch/internal/timeseries"
)

// Names lists the feature vector components in order; Vector returns
// values in the same order.
var Names = []string{
	"series_length",     // # intervals in the series
	"dominant_period",   // most dominant period (seconds)
	"second_period",     // second period (0 when single-period)
	"power",             // spectral power of the dominant period
	"acf_score",         // ACF strength of the dominant period
	"similar_sources",   // # sources sharing the destination
	"ngram_distinct",    // # distinct 3-grams in symbolized series
	"ngram_top_ratio",   // frequency share of the most common 3-gram
	"entropy",           // entropy of symbolized series (bits)
	"compress_ratio",    // gzip ratio of symbolized series
	"periodic_fraction", // fraction of intervals matching a period ('x')
	"interval_rel_std",  // std/mean of intervals near dominant period
}

// Case is the input to feature extraction: one candidate communication
// pair with its detection outputs.
type Case struct {
	// Intervals are the inter-request intervals in seconds.
	Intervals []float64
	// DominantPeriods are the detected periods, strongest first.
	DominantPeriods []float64
	// Power is the spectral power of the strongest period.
	Power float64
	// ACFScore is the autocorrelation strength of the strongest period.
	ACFScore float64
	// SimilarSources is the number of distinct sources observed beaconing
	// to the same destination.
	SimilarSources int
}

// Vector computes the Table II feature vector. It never fails: degenerate
// cases yield zero-valued features.
func Vector(c Case) []float64 {
	v := make([]float64, len(Names))
	v[0] = float64(len(c.Intervals))
	if len(c.DominantPeriods) > 0 {
		v[1] = c.DominantPeriods[0]
	}
	if len(c.DominantPeriods) > 1 {
		v[2] = c.DominantPeriods[1]
	}
	v[3] = c.Power
	v[4] = c.ACFScore
	v[5] = float64(c.SimilarSources)

	sym := timeseries.Symbolize(c.Intervals, c.DominantPeriods, timeseries.SymbolizeOptions{})
	hist := timeseries.NGramHistogram(sym, 3)
	v[6] = float64(len(hist))
	total, top := 0, 0
	for _, n := range hist {
		total += n
		if n > top {
			top = n
		}
	}
	if total > 0 {
		v[7] = float64(top) / float64(total)
	}
	counts := timeseries.SymbolCounts(sym)
	v[8] = stats.Entropy(counts[:])
	v[9] = compressRatio(sym)
	if len(sym) > 0 {
		v[10] = float64(counts[0]) / float64(len(sym))
	}
	v[11] = RelStdNearPeriod(c.Intervals, c.DominantPeriods)
	return v
}

// compressRatio returns len(gzip(s))/len(s) at the highest compression
// level; highly regular series compress far below 1. Series shorter than
// the gzip header overhead report 1 (incompressible).
func compressRatio(s string) float64 {
	if len(s) == 0 {
		return 1
	}
	var buf bytes.Buffer
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestCompression)
	if err != nil {
		return 1
	}
	if _, err := zw.Write([]byte(s)); err != nil {
		return 1
	}
	if err := zw.Close(); err != nil {
		return 1
	}
	ratio := float64(buf.Len()) / float64(len(s))
	if ratio > 1 {
		ratio = 1
	}
	return ratio
}

// RelStdNearPeriod measures the relative spread (std/mean) of the
// intervals within 30% of the dominant period — low spread means strong,
// clock-like beaconing. The ranking phase uses it as its regularity
// indicator.
//
//bw:noalloc runs once per ranked candidate over a pooled interval buffer
func RelStdNearPeriod(intervals, periods []float64) float64 {
	if len(periods) == 0 {
		return 0
	}
	p := periods[0]
	if p <= 0 {
		return 0
	}
	// Welford's update over the intervals within 30% of the period: this
	// runs once per ranked candidate, and streaming the moments keeps it
	// from building a filtered copy on every call.
	var n int
	var mean, m2 float64
	for _, iv := range intervals {
		if iv >= 0.7*p && iv <= 1.3*p {
			n++
			d := iv - mean
			mean += d / float64(n)
			m2 += d * (iv - mean)
		}
	}
	if n < 2 || mean == 0 {
		return 0
	}
	return math.Sqrt(m2/float64(n-1)) / mean
}
