package features

import (
	"math/rand"
	"testing"
)

func TestVectorLengthMatchesNames(t *testing.T) {
	v := Vector(Case{})
	if len(v) != len(Names) {
		t.Fatalf("len(Vector) = %d, len(Names) = %d", len(v), len(Names))
	}
}

func TestVectorDegenerateCase(t *testing.T) {
	v := Vector(Case{})
	for i, x := range v {
		if x != 0 && i != 9 { // compress_ratio of empty string is 1
			t.Errorf("feature %s = %v, want 0 for empty case", Names[i], x)
		}
	}
	if v[9] != 1 {
		t.Errorf("compress_ratio of empty case = %v, want 1", v[9])
	}
}

func cleanBeaconCase(n int, period float64) Case {
	intervals := make([]float64, n)
	for i := range intervals {
		intervals[i] = period
	}
	return Case{
		Intervals:       intervals,
		DominantPeriods: []float64{period},
		Power:           100,
		ACFScore:        0.95,
		SimilarSources:  3,
	}
}

func noisyCase(n int, seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	intervals := make([]float64, n)
	for i := range intervals {
		intervals[i] = rng.Float64() * 1000
	}
	return Case{Intervals: intervals, DominantPeriods: []float64{60}}
}

func TestVectorCleanBeacon(t *testing.T) {
	v := Vector(cleanBeaconCase(200, 60))
	if v[0] != 200 {
		t.Errorf("series_length = %v", v[0])
	}
	if v[1] != 60 {
		t.Errorf("dominant_period = %v", v[1])
	}
	if v[2] != 0 {
		t.Errorf("second_period = %v, want 0", v[2])
	}
	if v[5] != 3 {
		t.Errorf("similar_sources = %v", v[5])
	}
	// A pure 'x' series: one distinct 3-gram, zero entropy, high
	// compressibility, periodic fraction 1.
	if v[6] != 1 {
		t.Errorf("ngram_distinct = %v, want 1", v[6])
	}
	if v[7] != 1 {
		t.Errorf("ngram_top_ratio = %v, want 1", v[7])
	}
	if v[8] != 0 {
		t.Errorf("entropy = %v, want 0", v[8])
	}
	if v[9] > 0.5 {
		t.Errorf("compress_ratio = %v, want << 1", v[9])
	}
	if v[10] != 1 {
		t.Errorf("periodic_fraction = %v, want 1", v[10])
	}
	if v[11] != 0 {
		t.Errorf("interval_rel_std = %v, want 0 for constant intervals", v[11])
	}
}

func TestVectorSeparatesCleanFromNoisy(t *testing.T) {
	clean := Vector(cleanBeaconCase(300, 60))
	noisy := Vector(noisyCase(300, 1))
	if clean[8] >= noisy[8] {
		t.Errorf("entropy: clean %v should be below noisy %v", clean[8], noisy[8])
	}
	if clean[9] >= noisy[9] {
		t.Errorf("compress_ratio: clean %v should be below noisy %v", clean[9], noisy[9])
	}
	if clean[10] <= noisy[10] {
		t.Errorf("periodic_fraction: clean %v should exceed noisy %v", clean[10], noisy[10])
	}
}

func TestVectorMultiPeriod(t *testing.T) {
	c := cleanBeaconCase(50, 7.5)
	c.DominantPeriods = []float64{7.5, 10800}
	v := Vector(c)
	if v[1] != 7.5 || v[2] != 10800 {
		t.Errorf("periods = %v, %v", v[1], v[2])
	}
}

func TestRelStdNearPeriod(t *testing.T) {
	// Intervals with spread near the period; far outliers excluded.
	intervals := []float64{58, 60, 62, 60, 1000, 2}
	v := RelStdNearPeriod(intervals, []float64{60})
	if v <= 0 || v > 0.1 {
		t.Errorf("relStd = %v, want small positive", v)
	}
	if got := RelStdNearPeriod(intervals, nil); got != 0 {
		t.Errorf("no periods should yield 0, got %v", got)
	}
	if got := RelStdNearPeriod([]float64{60}, []float64{60}); got != 0 {
		t.Errorf("single near interval should yield 0, got %v", got)
	}
	if got := RelStdNearPeriod(intervals, []float64{-5}); got != 0 {
		t.Errorf("non-positive period should yield 0, got %v", got)
	}
}

func TestCompressRatioBounds(t *testing.T) {
	if r := compressRatio(""); r != 1 {
		t.Errorf("empty ratio = %v", r)
	}
	// Tiny strings: gzip overhead dominates, ratio clamps to 1.
	if r := compressRatio("xyz"); r != 1 {
		t.Errorf("tiny ratio = %v, want clamped 1", r)
	}
	long := make([]byte, 10000)
	for i := range long {
		long[i] = 'x'
	}
	if r := compressRatio(string(long)); r > 0.05 {
		t.Errorf("repetitive ratio = %v, want tiny", r)
	}
}

// RelStdNearPeriod is annotated //bw:noalloc (the ranking phase calls it
// per candidate over a pooled interval buffer); this pins the promise.
func TestRelStdNearPeriodAllocs(t *testing.T) {
	intervals := make([]float64, 256)
	for i := range intervals {
		intervals[i] = 55 + float64(i%11)
	}
	periods := []float64{60}
	allocs := testing.AllocsPerRun(20, func() {
		_ = RelStdNearPeriod(intervals, periods)
	})
	if allocs != 0 {
		t.Errorf("RelStdNearPeriod allocates: %v allocs/op, want 0", allocs)
	}
}
