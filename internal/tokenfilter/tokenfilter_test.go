package tokenfilter

import (
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("/Update/Check?v=1.2&Platform=win")
	want := []string{"update", "check", "v", "1", "2", "platform", "win"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize empty = %v", got)
	}
	if got := Tokenize("///"); len(got) != 0 {
		t.Errorf("Tokenize separators only = %v", got)
	}
}

func TestPathHasBenignToken(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"/update/check", true},
		{"/av/signatures/latest", true},
		{"/ocsp", true},
		{"/news/feed.rss", true},
		{"/gate.php", false},
		{"/xjq9z/kkpow", false},
		{"", false},
		{"/img/logo.gif?c=77", false},
	}
	for _, c := range cases {
		if got := PathHasBenignToken(c.path); got != c.want {
			t.Errorf("PathHasBenignToken(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestAnalyzeBenignPoller(t *testing.T) {
	f := New()
	paths := []string{"/update/check", "/update/check", "/update/check"}
	a := f.Analyze(paths)
	if !a.LikelyBenign {
		t.Errorf("stable update poller should be benign: %+v", a)
	}
	if a.DistinctPaths != 1 || a.Stability != 1 {
		t.Errorf("stability wrong: %+v", a)
	}
	if a.BenignTokenRatio != 1 {
		t.Errorf("BenignTokenRatio = %v", a.BenignTokenRatio)
	}
}

func TestAnalyzeCnCGate(t *testing.T) {
	f := New()
	a := f.Analyze([]string{"/gate.php", "/gate.php"})
	if a.LikelyBenign {
		t.Errorf("C&C gate must not be benign: %+v", a)
	}
}

func TestAnalyzeUnstablePathSet(t *testing.T) {
	f := New()
	// Benign tokens but too many distinct paths: not a stable poller.
	paths := []string{
		"/update/1", "/update/2", "/update/3", "/update/4",
		"/update/5", "/update/6",
	}
	a := f.Analyze(paths)
	if a.LikelyBenign {
		t.Errorf("unstable path set must not be benign: %+v", a)
	}
	if a.DistinctPaths != 6 {
		t.Errorf("DistinctPaths = %d", a.DistinctPaths)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	f := New()
	a := f.Analyze(nil)
	if a.LikelyBenign {
		t.Error("no URL information must not vouch for a pair")
	}
}

func TestAnalyzeMixedPaths(t *testing.T) {
	f := New()
	// Half the requests are benign-looking, half are not: ratio exactly at
	// the threshold counts as benign (>=).
	a := f.Analyze([]string{"/update/check", "/abc"})
	if !a.LikelyBenign {
		t.Errorf("ratio 0.5 should pass the default 0.5 threshold: %+v", a)
	}
	a = f.Analyze([]string{"/update/check", "/abc", "/def"})
	if a.LikelyBenign {
		t.Errorf("ratio 0.33 should fail: %+v", a)
	}
}

func TestFilterZeroValueDefaults(t *testing.T) {
	var f Filter // zero thresholds fall back to defaults
	a := f.Analyze([]string{"/ping"})
	if !a.LikelyBenign {
		t.Errorf("zero-value filter should use defaults: %+v", a)
	}
}
