// Package tokenfilter implements the URL-path token analysis of the
// paper's suspicious-indication phase (Sect. V-A): legitimate periodic
// traffic (update checks, feed polls, OCSP) hits stable, dictionary-like
// paths, while C&C check-ins use empty, random, or parameter-staffed
// paths. The filter tokenizes the observed paths of a communication pair,
// matches tokens against a benign lexicon, and measures path-set
// stability; pairs that look like benign polling are filtered out of the
// ranking.
package tokenfilter

import (
	"strings"
)

// benignTokens is the lexicon of path tokens characteristic of legitimate
// periodic services.
var benignTokens = map[string]struct{}{
	"update": {}, "updates": {}, "softwareupdate": {}, "upgrade": {},
	"check": {}, "version": {}, "versions": {}, "manifest": {},
	"signature": {}, "signatures": {}, "definitions": {}, "av": {},
	"license": {}, "verify": {}, "activation": {},
	"poll": {}, "polling": {}, "inbox": {}, "mail": {}, "feed": {},
	"rss": {}, "atom": {}, "news": {}, "latest": {},
	"ocsp": {}, "crl": {}, "pki": {}, "cert": {},
	"ping": {}, "status": {}, "health": {}, "heartbeat": {},
	"time": {}, "sync": {}, "ntp": {},
	"telemetry": {}, "metrics": {}, "report": {}, "stats": {},
	"api": {}, "v1": {}, "v2": {},
}

// Analysis is the outcome of inspecting one pair's URL paths.
type Analysis struct {
	// BenignTokenRatio is the fraction of paths containing at least one
	// lexicon token.
	BenignTokenRatio float64
	// DistinctPaths is the number of distinct paths observed.
	DistinctPaths int
	// Stability is 1/DistinctPaths (1 when every request hits one path) —
	// legitimate beacons poll a fixed endpoint.
	Stability float64
	// LikelyBenign is the filter verdict.
	LikelyBenign bool
}

// Filter applies the token analysis with the given decision thresholds.
type Filter struct {
	// MinBenignRatio is the benign-token ratio at which a stable path set
	// is considered legitimate polling. Default 0.5.
	MinBenignRatio float64
	// MaxDistinctPaths is the largest path-set size still considered a
	// stable poller. Default 4.
	MaxDistinctPaths int
}

// New returns a Filter with the default thresholds.
func New() *Filter {
	return &Filter{MinBenignRatio: 0.5, MaxDistinctPaths: 4}
}

// Analyze inspects the URL paths observed for one communication pair.
// A nil or empty path set yields a non-benign verdict: with no URL
// information the filter cannot vouch for the pair.
func (f *Filter) Analyze(paths []string) Analysis {
	var a Analysis
	if len(paths) == 0 {
		return a
	}
	distinct := make(map[string]struct{}, len(paths))
	benign := 0
	for _, p := range paths {
		distinct[p] = struct{}{}
		if PathHasBenignToken(p) {
			benign++
		}
	}
	a.DistinctPaths = len(distinct)
	a.BenignTokenRatio = float64(benign) / float64(len(paths))
	a.Stability = 1 / float64(a.DistinctPaths)
	minRatio := f.MinBenignRatio
	if minRatio <= 0 {
		minRatio = 0.5
	}
	maxPaths := f.MaxDistinctPaths
	if maxPaths <= 0 {
		maxPaths = 4
	}
	a.LikelyBenign = a.BenignTokenRatio >= minRatio && a.DistinctPaths <= maxPaths
	return a
}

// PathHasBenignToken reports whether any token of the path appears in the
// benign lexicon.
func PathHasBenignToken(path string) bool {
	for _, tok := range Tokenize(path) {
		if _, ok := benignTokens[tok]; ok {
			return true
		}
	}
	return false
}

// Tokenize splits a URL path into lowercase tokens on the separators
// "/._-?=&" and strips file extensions into their own tokens.
func Tokenize(path string) []string {
	path = strings.ToLower(path)
	return strings.FieldsFunc(path, func(r rune) bool {
		switch r {
		case '/', '.', '_', '-', '?', '=', '&':
			return true
		}
		return false
	})
}
