package fmath

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1.1, 1e-9, false},
		{0, 1e-10, 1e-9, true},
		{math.Inf(1), math.Inf(1), 0, true},
		{math.Inf(1), math.Inf(-1), 1e300, false},
		{math.NaN(), math.NaN(), math.Inf(1), false},
		{1, math.NaN(), math.Inf(1), false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.eps); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
	}
}

func TestNear(t *testing.T) {
	if !Near(1e12, 1e12+1) {
		t.Error("Near should scale tolerance with magnitude")
	}
	if Near(0, 1e-6) {
		t.Error("Near(0, 1e-6) should be false at absolute DefaultEps")
	}
	if !Near(0, 1e-10) {
		t.Error("Near(0, 1e-10) should hold within DefaultEps")
	}
	if Near(math.NaN(), math.NaN()) {
		t.Error("NaN is not near anything")
	}
}
