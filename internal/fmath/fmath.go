// Package fmath holds the float comparison helpers the floatcmp analyzer
// steers code toward. Exact ==/!= on floating-point values is almost
// always a bug in the analysis packages (periodogram powers, ACF scores,
// and test statistics all pass through enough arithmetic that equal
// quantities rarely stay bit-identical); these helpers make the tolerance
// explicit instead.
//
// The package is a leaf — it imports only math — so every layer
// (internal/dsp, internal/stats, internal/core) can use it without
// creating import cycles.
package fmath

import "math"

// DefaultEps is the tolerance used by Near. It is generous relative to
// float64 machine epsilon (~2.2e-16) because the quantities compared in
// this repo accumulate error across FFTs and running sums.
const DefaultEps = 1e-9

// ApproxEqual reports whether a and b differ by at most eps in absolute
// terms. NaN is never approximately equal to anything, including itself.
func ApproxEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { // exact-equality fast path, incl. equal infinities
		return true
	}
	return math.Abs(a-b) <= eps
}

// Near reports whether a and b are equal within DefaultEps, scaled by the
// larger magnitude once values exceed 1 (absolute tolerance near zero,
// relative tolerance for large values).
func Near(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return ApproxEqual(a, b, DefaultEps*scale)
}
