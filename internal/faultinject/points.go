package faultinject

// Point is the name of a fault-injection point. Production code addresses
// every injection point through one of the typed constants below rather
// than a bare string literal, so that a typo in a point name is a compile
// error (unknown identifier) or a lint error (unregistered literal, see
// internal/analysis/faultpoint) instead of a silently disarmed fault hook.
//
// Two kinds of points exist:
//
//   - plain points ("opsloop.commit.done") are traversed with the constant
//     itself;
//   - keyed points ("pipeline.detect") carry a per-call key appended with
//     Keyed, producing names like "pipeline.detect:src|dst". Schedulers
//     and tests match keyed traversals by the registered prefix.
type Point string

// Keyed derives the per-call instance of a keyed point: p + ":" + key.
// Hot concurrent paths use distinct keyed instances so per-point hit
// counts stay deterministic (see the package comment).
func (p Point) Keyed(key string) Point { return p + Point(":"+key) }

// Registered fault-injection points. Every point traversed by production
// code must be declared here and listed in Points(); the faultpoint
// analyzer enforces both directions, and TestRegisteredPointsExercised
// asserts each one is exercised by at least one fault-injection test.
const (
	// opsloop manifest journal: the atomic write-ahead manifest update
	// (create temp, write, fsync, rename, fsync dir).
	PointOpsloopManifestCreate  Point = "opsloop.manifest.create"
	PointOpsloopManifestWrite   Point = "opsloop.manifest.write"
	PointOpsloopManifestSync    Point = "opsloop.manifest.sync"
	PointOpsloopManifestRename  Point = "opsloop.manifest.rename"
	PointOpsloopManifestDirsync Point = "opsloop.manifest.dirsync"

	// opsloop per-day payload: the atomic day-file write.
	PointOpsloopDayCreate  Point = "opsloop.day.create"
	PointOpsloopDayWrite   Point = "opsloop.day.write"
	PointOpsloopDaySync    Point = "opsloop.day.sync"
	PointOpsloopDayRename  Point = "opsloop.day.rename"
	PointOpsloopDayDirsync Point = "opsloop.day.dirsync"

	// opsloop state transitions around a day commit.
	PointOpsloopNoveltySave Point = "opsloop.novelty.save"
	PointOpsloopCommitDone  Point = "opsloop.commit.done"

	// mapreduce task execution and spill I/O.
	PointMapreduceMapTask     Point = "mapreduce.map.task"
	PointMapreduceReduceTask  Point = "mapreduce.reduce.task"
	PointMapreduceSpillWrite  Point = "mapreduce.spill.write"
	PointMapreduceSpillReplay Point = "mapreduce.spill.replay"

	// pipeline per-candidate isolation points, keyed by "src|dst".
	PointPipelineDetect     Point = "pipeline.detect"
	PointPipelineIndication Point = "pipeline.indication"

	// guard watchdog stall notifications, keyed by worker name.
	PointGuardWatchdogStall Point = "guard.watchdog.stall"

	// ingest sharded streaming scan and aggregation, keyed by the split
	// (scan) or partition index (aggregate).
	PointIngestShardScan Point = "ingest.shard.scan"
	PointIngestAggregate Point = "ingest.aggregate"

	// mrx multi-process executor, coordinator side: worker spawn, task
	// assignment, task completion (before journaling), the map->reduce
	// shuffle barrier, and the recovery-journal commit.
	PointMrxSpawn          Point = "mrx.spawn"
	PointMrxAssign         Point = "mrx.assign"
	PointMrxComplete       Point = "mrx.complete"
	PointMrxShuffleBarrier Point = "mrx.shuffle.barrier"
	PointMrxJournalWrite   Point = "mrx.journal.write"

	// mrx worker side (traversed inside exec'd worker processes; schedule
	// these through the EnvScheduleVar transport): task start, the ack
	// gap between finishing a task (spills durable) and sending
	// task-done, and each heartbeat send.
	PointMrxWorkerTask      Point = "mrx.worker.task"
	PointMrxWorkerAck       Point = "mrx.worker.ack"
	PointMrxWorkerHeartbeat Point = "mrx.worker.heartbeat"

	// source live-source connectors (internal/source), keyed by source
	// name: the file follower's open/read cycle plus the rotation and
	// truncation transitions (the race windows where a tail can lose or
	// double-read data), the socket accept/read path (connection resets),
	// and the HTTP ingest handler.
	PointSourceFollowOpen     Point = "source.follow.open"
	PointSourceFollowRead     Point = "source.follow.read"
	PointSourceFollowRotate   Point = "source.follow.rotate"
	PointSourceFollowTruncate Point = "source.follow.truncate"
	PointSourceSocketAccept   Point = "source.socket.accept"
	PointSourceSocketRead     Point = "source.socket.read"
	PointSourceHTTPIngest     Point = "source.http.ingest"

	// source daemon checkpoint: the atomic state-snapshot write (create
	// temp, write, fsync, rename, fsync dir), the post-commit gap, and
	// the incremental detection tick.
	PointSourceCheckpointCreate  Point = "source.checkpoint.create"
	PointSourceCheckpointWrite   Point = "source.checkpoint.write"
	PointSourceCheckpointSync    Point = "source.checkpoint.sync"
	PointSourceCheckpointRename  Point = "source.checkpoint.rename"
	PointSourceCheckpointDirsync Point = "source.checkpoint.dirsync"
	PointSourceCommitDone        Point = "source.commit.done"
	PointSourceDetectTick        Point = "source.detect.tick"
	// Retention points: compact.plan fires before the eviction set is
	// computed (an error aborts the commit untouched); evict.apply fires
	// after the compacted checkpoint committed and the in-memory store
	// dropped the evicted pairs (a pure crash point, like commit.done).
	PointSourceCompactPlan Point = "source.compact.plan"
	PointSourceEvictApply  Point = "source.evict.apply"
)

// Points returns every registered fault-injection point. Keyed points are
// listed by their prefix (the part before the ":<key>" suffix).
func Points() []Point {
	return []Point{
		PointOpsloopManifestCreate,
		PointOpsloopManifestWrite,
		PointOpsloopManifestSync,
		PointOpsloopManifestRename,
		PointOpsloopManifestDirsync,
		PointOpsloopDayCreate,
		PointOpsloopDayWrite,
		PointOpsloopDaySync,
		PointOpsloopDayRename,
		PointOpsloopDayDirsync,
		PointOpsloopNoveltySave,
		PointOpsloopCommitDone,
		PointMapreduceMapTask,
		PointMapreduceReduceTask,
		PointMapreduceSpillWrite,
		PointMapreduceSpillReplay,
		PointPipelineDetect,
		PointPipelineIndication,
		PointGuardWatchdogStall,
		PointIngestShardScan,
		PointIngestAggregate,
		PointMrxSpawn,
		PointMrxAssign,
		PointMrxComplete,
		PointMrxShuffleBarrier,
		PointMrxJournalWrite,
		PointMrxWorkerTask,
		PointMrxWorkerAck,
		PointMrxWorkerHeartbeat,
		PointSourceFollowOpen,
		PointSourceFollowRead,
		PointSourceFollowRotate,
		PointSourceFollowTruncate,
		PointSourceSocketAccept,
		PointSourceSocketRead,
		PointSourceHTTPIngest,
		PointSourceCheckpointCreate,
		PointSourceCheckpointWrite,
		PointSourceCheckpointSync,
		PointSourceCheckpointRename,
		PointSourceCheckpointDirsync,
		PointSourceCommitDone,
		PointSourceDetectTick,
		PointSourceCompactPlan,
		PointSourceEvictApply,
	}
}
