package faultinject

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestScheduleEncodeDecodeRoundTrip(t *testing.T) {
	s := Schedule{
		Worker: 2,
		Rules: []EnvRule{
			{Point: string(PointMrxWorkerTask), From: 1, Crash: true},
			{Point: string(PointMrxWorkerAck), From: 2, To: 4, Err: "scripted"},
			{Point: string(PointMrxWorkerHeartbeat), From: 1, DelayMS: 50},
		},
	}
	enc, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSchedule(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mutated schedule:\ngot  %+v\nwant %+v", got, s)
	}
}

func TestScheduleDecodeEmpty(t *testing.T) {
	s, err := DecodeSchedule("")
	if err != nil {
		t.Fatal(err)
	}
	if s.Worker != AllWorkers || len(s.Rules) != 0 {
		t.Fatalf("empty schedule decoded to %+v", s)
	}
}

func TestScheduleDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, val, want string
	}{
		{"bad json", "{not json", "decode schedule"},
		{"no point", `{"worker":-1,"rules":[{"from":1}]}`, "has no point"},
		{"zero from", `{"worker":-1,"rules":[{"point":"p","from":0}]}`, "from must be >= 1"},
		{"inverted range", `{"worker":-1,"rules":[{"point":"p","from":3,"to":2}]}`, "to 2 < from 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeSchedule(tc.val); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("DecodeSchedule(%q) err = %v, want %q", tc.val, err, tc.want)
			}
		})
	}
}

func TestScheduleWorkerTargeting(t *testing.T) {
	s := Schedule{Worker: 1, Rules: []EnvRule{{Point: "p", From: 1, Err: "x"}}}
	if s.Scheduler(0) != nil {
		t.Fatal("schedule targeting worker 1 materialized for worker 0")
	}
	if s.Scheduler(1) == nil {
		t.Fatal("schedule did not materialize for its target worker")
	}
	s.Worker = AllWorkers
	if s.Scheduler(7) == nil {
		t.Fatal("AllWorkers schedule did not materialize")
	}
	if (Schedule{Worker: AllWorkers}).Scheduler(0) != nil {
		t.Fatal("rule-less schedule materialized a scheduler")
	}
}

func TestScheduleSchedulerErrAndCrashRules(t *testing.T) {
	s := Schedule{Worker: AllWorkers, Rules: []EnvRule{
		{Point: "p.err", From: 2, To: 3, Err: "scripted failure"},
		{Point: "p.crash", From: 1, Crash: true},
	}}
	sched := s.Scheduler(0)
	hook := sched.Hook()

	if err := hook("p.err"); err != nil {
		t.Fatalf("hit 1 outside [2,3] errored: %v", err)
	}
	for hit := 2; hit <= 3; hit++ {
		if err := hook("p.err"); err == nil || !strings.Contains(err.Error(), "scripted failure") {
			t.Fatalf("hit %d: err = %v, want scripted failure", hit, err)
		}
	}
	if err := hook("p.err"); err != nil {
		t.Fatalf("hit 4 past the range errored: %v", err)
	}

	crash, err := Run(func() error { return hook("p.crash") })
	if crash == nil {
		t.Fatalf("crash rule did not crash (err=%v)", err)
	}
}

func TestScheduleSchedulerDelayRule(t *testing.T) {
	s := Schedule{Worker: AllWorkers, Rules: []EnvRule{
		{Point: "p.slow", From: 1, DelayMS: 30},
	}}
	hook := s.Scheduler(0).Hook()
	start := time.Now()
	if err := hook("p.slow"); err != nil {
		t.Fatalf("delay rule errored: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay rule slept only %v", d)
	}
}
