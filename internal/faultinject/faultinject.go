// Package faultinject is a deterministic, seed-driven fault scheduler for
// crash-safety and degraded-mode testing. Production packages expose a
// fault hook — a nil-able `func(point string) error` consulted at named
// injection points (file writes, fsyncs, renames, spill I/O) — and tests
// install a Scheduler behind it to script failures:
//
//   - FailAt / FailTransient return injected errors at exact per-point hit
//     counts, modelling one-shot and transient I/O faults;
//   - CrashAt / CrashAtGlobalHit panic with a *Crash sentinel, modelling a
//     process dying at that instruction; Run converts the panic back into
//     a value so the test can "restart" the system and assert convergence;
//   - DelayAt sleeps at a point, modelling a slow call (degenerate fits,
//     saturated disks) for deadline and watchdog tests;
//   - HangAt blocks at a point until ReleaseHangs, modelling a call that
//     never returns; the caller's deadline/watchdog machinery must cancel
//     around it, and ReleaseHangs lets tests drain the abandoned
//     goroutine and assert no leaks;
//   - RandomErrors injects seed-driven pseudo-random faults that replay
//     identically for the same seed.
//
// The scheduler records every hit in order, so a test can first run a
// workload fault-free to enumerate its injection points and then re-run it
// once per point with a crash scheduled there (the
// crash-at-every-injection-point loop the opsloop recovery tests use).
// All methods are safe for concurrent use; determinism under concurrency
// is the caller's responsibility (per-point hit counts are only
// deterministic where the workload hits a point from one goroutine, which
// is why hot concurrent paths use distinct point names).
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Crash is the panic value raised at a scheduled crash point. It
// deliberately does not implement error: nothing should mistake a
// simulated process death for a returnable failure.
type Crash struct {
	// Point is the injection point that crashed.
	Point string
	// Hit is the per-point hit count at which the crash fired.
	Hit int
}

func (c *Crash) String() string {
	return fmt.Sprintf("faultinject: crash at %s (hit %d)", c.Point, c.Hit)
}

// Hit is one recorded traversal of an injection point.
type Hit struct {
	// Point is the injection point's name.
	Point string
	// N is the per-point hit count (1-based).
	N int
}

// rule scripts faults for one point: inject on per-point hits in
// [from, to] (inclusive, 1-based).
type rule struct {
	point    string
	from, to int
	err      error
	crash    bool
	delay    time.Duration
	hang     bool
}

// Scheduler scripts faults over named injection points. The zero value is
// not usable; construct with New.
type Scheduler struct {
	mu         sync.Mutex
	rng        *rand.Rand
	rules      []rule
	hits       map[string]int
	globalHits int
	crashAtN   int // crash at the nth Check call overall (0 = off)
	randProb   float64
	randErr    error
	trace      []Hit

	// Hang machinery: hangRelease is closed by ReleaseHangs; hangActive
	// counts goroutines currently blocked in a hang.
	hangRelease  chan struct{}
	hangReleased bool
	hangActive   int
}

// New returns an empty scheduler. seed drives RandomErrors; scripted
// rules are deterministic regardless of seed.
func New(seed int64) *Scheduler {
	return &Scheduler{
		rng:         rand.New(rand.NewSource(seed)),
		hits:        make(map[string]int),
		hangRelease: make(chan struct{}),
	}
}

// Hook returns the function production code calls at injection points;
// install it behind a package's fault seam.
func (s *Scheduler) Hook() func(point string) error { return s.check }

// FailAt injects err on the hit-th traversal of point (1-based).
func (s *Scheduler) FailAt(point Point, hit int, err error) {
	s.addRule(rule{point: string(point), from: hit, to: hit, err: err})
}

// FailTransient injects err on `times` consecutive traversals of point
// starting at hit, modelling a transient fault that clears on retry.
func (s *Scheduler) FailTransient(point Point, hit, times int, err error) {
	s.addRule(rule{point: string(point), from: hit, to: hit + times - 1, err: err})
}

// CrashAt panics with *Crash on the hit-th traversal of point.
func (s *Scheduler) CrashAt(point Point, hit int) {
	s.addRule(rule{point: string(point), from: hit, to: hit, crash: true})
}

// DelayAt sleeps d on the hit-th traversal of point before returning nil,
// modelling a slow (but eventually successful) call for deadline and
// watchdog tests.
func (s *Scheduler) DelayAt(point Point, hit int, d time.Duration) {
	s.addRule(rule{point: string(point), from: hit, to: hit, delay: d})
}

// HangAt blocks the hit-th traversal of point until ReleaseHangs is
// called, modelling a call that never returns on its own. After release
// the traversal returns an injected error (the hang was a fault, not a
// success). The calling goroutine is parked — deadline or watchdog
// machinery above the injection point must cancel around it, and the
// test must call ReleaseHangs before asserting goroutine counts.
func (s *Scheduler) HangAt(point Point, hit int) {
	s.addRule(rule{point: string(point), from: hit, to: hit, hang: true})
}

// ReleaseHangs unblocks every goroutine currently (or subsequently)
// parked by HangAt. Idempotent.
func (s *Scheduler) ReleaseHangs() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hangReleased {
		s.hangReleased = true
		close(s.hangRelease)
	}
}

// ActiveHangs reports how many goroutines are currently parked by HangAt;
// tests use it to wait until an injected hang has engaged.
func (s *Scheduler) ActiveHangs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hangActive
}

// CrashAtGlobalHit panics with *Crash on the nth Check call overall
// (1-based), regardless of point. Combined with a fault-free enumeration
// run this crashes a workload at every injection point it traverses.
func (s *Scheduler) CrashAtGlobalHit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashAtN = n
}

// RandomErrors injects err at each traversal with probability p, drawn
// from the scheduler's seeded generator: the same seed and hit sequence
// replay the same faults.
func (s *Scheduler) RandomErrors(p float64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.randProb, s.randErr = p, err
}

func (s *Scheduler) addRule(r rule) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = append(s.rules, r)
}

// check is the Hook implementation. Faults are decided under the lock;
// delays and hangs execute after it so a parked goroutine never blocks
// other injection points.
func (s *Scheduler) check(point string) error {
	s.mu.Lock()
	s.hits[point]++
	s.globalHits++
	n := s.hits[point]
	s.trace = append(s.trace, Hit{Point: point, N: n})
	crash := s.crashAtN > 0 && s.globalHits == s.crashAtN
	var err error
	var delay time.Duration
	var hang bool
	if !crash {
		for _, r := range s.rules {
			if r.point != point || n < r.from || n > r.to {
				continue
			}
			if r.crash {
				crash = true
			} else {
				err = r.err
				delay = r.delay
				hang = r.hang
			}
			break
		}
	}
	if err == nil && !crash && !hang && delay == 0 && s.randProb > 0 && s.rng.Float64() < s.randProb {
		err = s.randErr
	}
	if hang {
		s.hangActive++
	}
	release := s.hangRelease
	s.mu.Unlock()
	if crash {
		panic(&Crash{Point: point, Hit: n})
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if hang {
		<-release
		s.mu.Lock()
		s.hangActive--
		s.mu.Unlock()
		return fmt.Errorf("faultinject: hang at %s released", point)
	}
	return err
}

// Trace returns every hit recorded so far, in order.
func (s *Scheduler) Trace() []Hit {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Hit, len(s.trace))
	copy(out, s.trace)
	return out
}

// TotalHits returns the number of Check calls recorded so far.
func (s *Scheduler) TotalHits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.globalHits
}

// Run executes fn, converting a scheduled crash back into a value: a
// non-nil *Crash means the simulated process died mid-fn and the system
// under test should be "restarted" from its persistent state. Other
// panics propagate.
func Run(fn func() error) (crash *Crash, err error) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := r.(*Crash); ok {
				crash = c
				return
			}
			panic(r)
		}
	}()
	return nil, fn()
}
