package faultinject

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// declaredPoints parses points.go and returns the declared Point constants
// as name -> value. Parsing the source (rather than reflecting, which Go
// cannot do over constants) lets the tests assert that the declaration
// block and the Points() registry agree.
func declaredPoints(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "points.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	decls := map[string]string{}
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for i, name := range vs.Names {
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					t.Fatalf("constant %s is not a string literal", name.Name)
				}
				decls[name.Name] = strings.Trim(lit.Value, `"`)
			}
		}
	}
	return decls
}

// TestRegistryCompleteAndUnique: every declared Point constant appears in
// Points() exactly once, every registry entry is declared, and no two
// points share a name (a duplicate would make two call sites
// indistinguishable in traces and schedules).
func TestRegistryCompleteAndUnique(t *testing.T) {
	decls := declaredPoints(t)
	registered := map[string]bool{}
	for _, p := range Points() {
		if registered[string(p)] {
			t.Errorf("duplicate registered point %q", p)
		}
		registered[string(p)] = true
	}
	for name, val := range decls {
		if !registered[val] {
			t.Errorf("declared constant %s = %q missing from Points()", name, val)
		}
	}
	if len(registered) != len(decls) {
		t.Errorf("Points() has %d entries, points.go declares %d", len(registered), len(decls))
	}
	for _, p := range Points() {
		for _, r := range []rune(string(p)) {
			if !(r == '.' || r >= 'a' && r <= 'z' || r >= '0' && r <= '9') {
				t.Errorf("point %q: name must be lowercase dotted (got %q)", p, r)
			}
		}
	}
}

func TestKeyed(t *testing.T) {
	// The literal spells out Keyed's expected wire format on purpose.
	if got := PointPipelineDetect.Keyed("a|b"); got != "pipeline.detect:a|b" { //bw:faultpoint asserts the rendered form of Keyed
		t.Errorf("Keyed = %q", got)
	}
}

// TestRegisteredPointsExercised: every registered point is exercised by at
// least one fault-injection test — its constant is referenced from some
// _test.go file in the repo (other than this one). A registered point no
// test schedules or matches is dead weight: a fault seam whose crash and
// error coverage has silently lapsed.
func TestRegisteredPointsExercised(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}

	var testSource strings.Builder
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && (d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".")) {
			return filepath.SkipDir
		}
		if !d.IsDir() && strings.HasSuffix(path, "_test.go") && filepath.Base(path) != "points_test.go" {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			testSource.Write(data)
			testSource.WriteByte('\n')
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	corpus := testSource.String()

	valueToName := map[string]string{}
	for name, val := range declaredPoints(t) {
		valueToName[val] = name
	}
	for _, p := range Points() {
		name := valueToName[string(p)]
		if name == "" {
			t.Errorf("point %q has no declared constant", p)
			continue
		}
		if !strings.Contains(corpus, name) {
			t.Errorf("registered point %s (%q) is not exercised by any fault-injection test", name, p)
		}
	}
}
