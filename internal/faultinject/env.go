package faultinject

import (
	"encoding/json"
	"fmt"
	"time"
)

// Env-transportable fault schedules: the multi-process MapReduce executor
// (internal/mrx) runs map and reduce tasks in exec'd child OS processes,
// so a test that wants to kill a worker mid-shuffle cannot install a
// Scheduler hook directly — the hook lives in the parent's address space.
// Instead the test encodes a schedule as JSON, the coordinator forwards it
// to every worker through the EnvSchedule environment variable, and the
// worker-mode entrypoint decodes it and installs a fresh Scheduler behind
// its fault seams. Per-point hit counts are therefore per-process: each
// worker counts its own traversals, which is exactly the "this process
// dies at its first spill write" semantics worker-death tests need.
//
// A schedule may target a single worker by index (the coordinator numbers
// workers 0,1,2,... and never reuses an index, including across respawns),
// so "kill worker 0 at point X" leaves the surviving workers — and any
// respawned replacement — fault-free, letting convergence tests assert
// that the job completes identically after the death.

// EnvSchedule is the name of the environment variable carrying an encoded
// schedule to exec'd worker processes.
const EnvScheduleVar = "BAYWATCH_FAULT_SCHEDULE"

// EnvRule scripts one fault for transport to a child process. The zero
// Kind fields compose like Scheduler rules: Crash wins over Err, Err over
// Delay; hits in [From, To] (1-based, inclusive) trigger the fault.
type EnvRule struct {
	// Point is the injection point's name (a registered Point, possibly
	// keyed).
	Point string `json:"point"`
	// From and To bound the per-point hit range (1-based, inclusive).
	// To == 0 means To = From.
	From int `json:"from"`
	To   int `json:"to,omitempty"`
	// Crash panics with *Crash at the hit, killing the worker process.
	Crash bool `json:"crash,omitempty"`
	// Err injects an error with this message at the hit.
	Err string `json:"err,omitempty"`
	// DelayMS sleeps this long at the hit before returning nil.
	DelayMS int64 `json:"delayMs,omitempty"`
}

// Schedule is an env-transportable set of fault rules, optionally
// targeted at one worker process.
type Schedule struct {
	// Worker targets the schedule at the worker with this index; -1 (or
	// omitted via AllWorkers) applies it to every worker.
	Worker int `json:"worker"`
	// Rules are the scripted faults.
	Rules []EnvRule `json:"rules"`
}

// AllWorkers is the Schedule.Worker value that applies the schedule to
// every worker process.
const AllWorkers = -1

// Encode serializes the schedule for the EnvScheduleVar environment
// variable.
func (s Schedule) Encode() (string, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("faultinject: encode schedule: %w", err)
	}
	return string(data), nil
}

// DecodeSchedule parses a schedule produced by Encode. An empty string
// decodes to an empty schedule targeting no rules.
func DecodeSchedule(val string) (Schedule, error) {
	s := Schedule{Worker: AllWorkers}
	if val == "" {
		return s, nil
	}
	if err := json.Unmarshal([]byte(val), &s); err != nil {
		return s, fmt.Errorf("faultinject: decode schedule: %w", err)
	}
	for i, r := range s.Rules {
		if r.Point == "" {
			return s, fmt.Errorf("faultinject: decode schedule: rule %d has no point", i)
		}
		if r.From <= 0 {
			return s, fmt.Errorf("faultinject: decode schedule: rule %d: from must be >= 1", i)
		}
		if r.To != 0 && r.To < r.From {
			return s, fmt.Errorf("faultinject: decode schedule: rule %d: to %d < from %d", i, r.To, r.From)
		}
	}
	return s, nil
}

// Scheduler materializes the schedule for the worker with the given
// index: nil when the schedule targets a different worker or scripts
// nothing, otherwise a fresh Scheduler with every rule installed.
func (s Schedule) Scheduler(workerIndex int) *Scheduler {
	if len(s.Rules) == 0 || (s.Worker != AllWorkers && s.Worker != workerIndex) {
		return nil
	}
	sched := New(0)
	for _, r := range s.Rules {
		to := r.To
		if to == 0 {
			to = r.From
		}
		switch {
		case r.Crash:
			for h := r.From; h <= to; h++ {
				sched.CrashAt(Point(r.Point), h)
			}
		case r.Err != "":
			sched.FailTransient(Point(r.Point), r.From, to-r.From+1, fmt.Errorf("%s", r.Err))
		case r.DelayMS > 0:
			for h := r.From; h <= to; h++ {
				sched.DelayAt(Point(r.Point), h, time.Duration(r.DelayMS)*time.Millisecond)
			}
		}
	}
	return sched
}
