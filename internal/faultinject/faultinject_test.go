package faultinject

import (
	"errors"
	"testing"
	"time"
)

var errInjected = errors.New("injected")

func TestFailAtExactHit(t *testing.T) {
	s := New(0)
	s.FailAt("write", 3, errInjected) //bw:faultpoint scratch point; this file tests the scheduler itself
	hook := s.Hook()
	for i := 1; i <= 5; i++ {
		err := hook("write")
		if (i == 3) != (err != nil) {
			t.Errorf("hit %d: err = %v", i, err)
		}
	}
	if err := hook("other"); err != nil {
		t.Errorf("unrelated point errored: %v", err)
	}
}

func TestFailTransientClearsAfterWindow(t *testing.T) {
	s := New(0)
	s.FailTransient("sync", 2, 3, errInjected) //bw:faultpoint scratch point; this file tests the scheduler itself
	hook := s.Hook()
	var got []bool
	for i := 1; i <= 6; i++ {
		got = append(got, hook("sync") != nil)
	}
	want := []bool{false, true, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: injected=%v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
}

func TestCrashAtRecoveredByRun(t *testing.T) {
	s := New(0)
	s.CrashAt("rename", 2) //bw:faultpoint scratch point; this file tests the scheduler itself
	hook := s.Hook()
	crash, err := Run(func() error {
		for i := 0; i < 5; i++ {
			if err := hook("rename"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if crash == nil {
		t.Fatal("expected a crash")
	}
	if crash.Point != "rename" || crash.Hit != 2 {
		t.Errorf("crash = %+v, want rename hit 2", crash)
	}
}

func TestCrashAtGlobalHitAndTrace(t *testing.T) {
	// Enumerate a workload's points fault-free, then crash at each.
	workload := func(hook func(string) error) error {
		for _, p := range []string{"a", "b", "a", "c"} {
			if err := hook(p); err != nil {
				return err
			}
		}
		return nil
	}
	probe := New(0)
	if err := workload(probe.Hook()); err != nil {
		t.Fatal(err)
	}
	if probe.TotalHits() != 4 {
		t.Fatalf("TotalHits = %d, want 4", probe.TotalHits())
	}
	tr := probe.Trace()
	want := []Hit{{"a", 1}, {"b", 1}, {"a", 2}, {"c", 1}}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("trace[%d] = %+v, want %+v", i, tr[i], want[i])
		}
	}
	for n := 1; n <= probe.TotalHits(); n++ {
		s := New(0)
		s.CrashAtGlobalHit(n)
		crash, err := Run(func() error { return workload(s.Hook()) })
		if err != nil {
			t.Fatalf("global hit %d: unexpected error %v", n, err)
		}
		if crash == nil {
			t.Fatalf("global hit %d: expected crash", n)
		}
		if crash.Point != want[n-1].Point || crash.Hit != want[n-1].N {
			t.Errorf("global hit %d: crashed at %+v, want %+v", n, crash, want[n-1])
		}
	}
}

func TestRandomErrorsDeterministicPerSeed(t *testing.T) {
	sample := func(seed int64) []bool {
		s := New(seed)
		s.RandomErrors(0.3, errInjected)
		hook := s.Hook()
		out := make([]bool, 200)
		for i := range out {
			out[i] = hook("op") != nil
		}
		return out
	}
	a, b, c := sample(7), sample(7), sample(8)
	injected := 0
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
		if a[i] {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Errorf("p=0.3 injected %d/%d faults", injected, len(a))
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestRunPassesThroughErrorsAndForeignPanics(t *testing.T) {
	crash, err := Run(func() error { return errInjected })
	if crash != nil || !errors.Is(err, errInjected) {
		t.Errorf("Run = (%v, %v), want plain error", crash, err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Error("foreign panic swallowed")
		}
	}()
	Run(func() error { panic("not a crash") })
}

func TestDelayAt(t *testing.T) {
	s := New(1)
	s.DelayAt("slow.op", 2, 40*time.Millisecond) //bw:faultpoint scratch point; this file tests the scheduler itself
	hook := s.Hook()

	start := time.Now()
	if err := hook("slow.op"); err != nil {
		t.Fatalf("hit 1 should be clean, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Millisecond {
		t.Fatalf("hit 1 delayed: %v", elapsed)
	}
	start = time.Now()
	if err := hook("slow.op"); err != nil {
		t.Fatalf("delayed hit must still succeed, got %v", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("hit 2 returned after %v, want >= 40ms", elapsed)
	}
}

func TestHangAtBlocksUntilRelease(t *testing.T) {
	s := New(1)
	s.HangAt("wedged.op", 1) //bw:faultpoint scratch point; this file tests the scheduler itself
	hook := s.Hook()

	errc := make(chan error, 1)
	go func() { errc <- hook("wedged.op") }()

	deadline := time.Now().Add(5 * time.Second)
	for s.ActiveHangs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hang never engaged")
		}
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case err := <-errc:
		t.Fatalf("hang returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	s.ReleaseHangs()
	s.ReleaseHangs() // idempotent
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("released hang must return an injected error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hang not released")
	}
	if s.ActiveHangs() != 0 {
		t.Fatalf("ActiveHangs = %d after release", s.ActiveHangs())
	}
	// Hits past the scripted one are clean.
	if err := hook("wedged.op"); err != nil {
		t.Fatalf("hit 2 should be clean, got %v", err)
	}
}
