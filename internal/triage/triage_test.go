package triage

import (
	"fmt"
	"math/rand"
	"testing"

	"baywatch/internal/forest"
)

// syntheticCases builds labeled cases with separable feature clusters plus
// an ambiguous band.
func syntheticCases(rng *rand.Rand, n int, prefix string) []Labeled {
	out := make([]Labeled, n)
	for i := range out {
		label := i % 2
		center := 0.0
		if label == 1 {
			center = 6
		}
		// Every 10th case sits in the overlap region.
		if i%10 == 0 {
			center = 3
		}
		out[i] = Labeled{
			ID:       fmt.Sprintf("%s-%d", prefix, i),
			Features: []float64{center + rng.NormFloat64(), rng.NormFloat64()},
			Label:    label,
		}
	}
	return out
}

func TestTriageEmptyTraining(t *testing.T) {
	if _, _, err := Triage(nil, nil, forest.Config{}); err == nil {
		t.Error("expected error for empty training window")
	}
}

func TestTriageClassifies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := syntheticCases(rng, 200, "train")
	cands := syntheticCases(rng, 400, "cand")
	classified, f, err := Triage(train, cands, forest.Config{Trees: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if f == nil || f.Trees() != 50 {
		t.Fatal("forest not returned")
	}
	if len(classified) != len(cands) {
		t.Fatalf("classified %d, want %d", len(classified), len(cands))
	}
	truth := make(map[string]int, len(cands))
	for _, c := range cands {
		truth[c.ID] = c.Label
	}
	m, skipped := Evaluate(classified, truth)
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	if m.Total() != len(cands) {
		t.Errorf("total = %d", m.Total())
	}
	acc := float64(m.TrueBenign+m.TruePositive) / float64(m.Total())
	if acc < 0.85 {
		t.Errorf("accuracy %v too low; matrix %+v", acc, m)
	}
}

func TestConfusionMatrix(t *testing.T) {
	var m ConfusionMatrix
	m.Add(0, 0)
	m.Add(0, 1)
	m.Add(1, 0)
	m.Add(1, 1)
	m.Add(1, 1)
	if m.TrueBenign != 1 || m.FalsePositive != 1 || m.FalseNegative != 1 || m.TruePositive != 2 {
		t.Errorf("matrix = %+v", m)
	}
	if m.Total() != 5 {
		t.Errorf("Total = %d", m.Total())
	}
	if got := m.FalsePositiveRate(); got != 0.5 {
		t.Errorf("FPR = %v, want 0.5", got)
	}
	var empty ConfusionMatrix
	if empty.FalsePositiveRate() != 0 {
		t.Error("empty FPR should be 0")
	}
}

func TestEvaluateSkipsUnlabeled(t *testing.T) {
	classified := []Classified{
		{ID: "a", Predicted: 1},
		{ID: "b", Predicted: 0},
		{ID: "missing", Predicted: 1},
	}
	truth := map[string]int{"a": 1, "b": 0}
	m, skipped := Evaluate(classified, truth)
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if m.TruePositive != 1 || m.TrueBenign != 1 || m.Total() != 2 {
		t.Errorf("matrix = %+v", m)
	}
}

func TestByUncertaintyOrdering(t *testing.T) {
	in := []Classified{
		{ID: "sure-benign", Prob: 0.02, Uncertainty: 0.04},
		{ID: "split", Prob: 0.5, Uncertainty: 1},
		{ID: "sure-mal", Prob: 0.97, Uncertainty: 0.06},
		{ID: "a-tied", Prob: 0.5, Uncertainty: 1},
	}
	out := ByUncertainty(in)
	if out[0].ID != "a-tied" || out[1].ID != "split" {
		t.Errorf("order = %v %v (ties broken by ID)", out[0].ID, out[1].ID)
	}
	if out[len(out)-1].Uncertainty > out[0].Uncertainty {
		t.Error("not descending")
	}
	// Input untouched.
	if in[0].ID != "sure-benign" {
		t.Error("input mutated")
	}
}

func TestFNReductionCurve(t *testing.T) {
	classified := []Classified{
		{ID: "fn1", Predicted: 0, Uncertainty: 0.9}, // malicious missed, very uncertain
		{ID: "tn", Predicted: 0, Uncertainty: 0.1},
		{ID: "fn2", Predicted: 0, Uncertainty: 0.5}, // malicious missed, medium
		{ID: "tp", Predicted: 1, Uncertainty: 0.2},
	}
	truth := map[string]int{"fn1": 1, "tn": 0, "fn2": 1, "tp": 1}
	curve := FNReductionCurve(classified, truth)
	if len(curve) != 5 {
		t.Fatalf("curve length = %d, want 5", len(curve))
	}
	if curve[0] != 2 {
		t.Errorf("initial FN = %d, want 2", curve[0])
	}
	// fn1 is most uncertain -> examined first -> FN drops to 1.
	if curve[1] != 1 {
		t.Errorf("after 1 exam = %d, want 1", curve[1])
	}
	// fn2 second -> 0.
	if curve[2] != 0 {
		t.Errorf("after 2 exams = %d, want 0", curve[2])
	}
	if curve[4] != 0 {
		t.Errorf("final = %d, want 0", curve[4])
	}
}

func TestFNCurveMonotone(t *testing.T) {
	// Property: the curve never increases, and uncertain FNs make it drop
	// faster early than a random order would on average.
	rng := rand.New(rand.NewSource(5))
	train := syntheticCases(rng, 300, "t")
	cands := syntheticCases(rng, 600, "c")
	classified, _, err := Triage(train, cands, forest.Config{Trees: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[string]int)
	for _, c := range cands {
		truth[c.ID] = c.Label
	}
	curve := FNReductionCurve(classified, truth)
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatalf("curve increased at %d: %d -> %d", i, curve[i-1], curve[i])
		}
	}
	if curve[len(curve)-1] != 0 {
		t.Errorf("curve must end at 0, got %d", curve[len(curve)-1])
	}
	// Early drop: after examining half the cases, most FNs found (the
	// classifier's mistakes concentrate in the uncertain band).
	if curve[0] > 0 {
		half := curve[len(curve)/2]
		if float64(half) > 0.5*float64(curve[0]) {
			t.Errorf("after half the exams %d/%d FNs remain; expected faster reduction", half, curve[0])
		}
	}
}
