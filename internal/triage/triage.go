// Package triage implements the bootstrap investigation workflow of
// Sect. VI: manually label a small sample of candidate cases (here: a
// labeled training window), train a random forest on their Table II
// feature vectors, classify the remaining candidates, and rank them by
// classifier uncertainty so analysts examine the most ambiguous cases
// first. It also provides the confusion-matrix and
// false-negative-reduction accounting of the paper's Table IV and Fig. 11.
package triage

import (
	"fmt"
	"sort"

	"baywatch/internal/forest"
)

// Labeled is a candidate case with a ground-truth label (0 benign,
// 1 malicious).
type Labeled struct {
	ID       string
	Features []float64
	Label    int
}

// Classified is the triage outcome for one candidate.
type Classified struct {
	ID string
	// Prob is the forest's malicious probability.
	Prob float64
	// Predicted is the majority-vote class.
	Predicted int
	// Uncertainty is 1 - |2*Prob - 1|; high values mean the ensemble is
	// split.
	Uncertainty float64
}

// Triage trains on the labeled window and classifies the candidates.
// It returns the classifications in the candidates' order.
func Triage(train []Labeled, candidates []Labeled, cfg forest.Config) ([]Classified, *forest.Forest, error) {
	if len(train) == 0 {
		return nil, nil, fmt.Errorf("triage: empty training window")
	}
	x := make([][]float64, len(train))
	y := make([]int, len(train))
	for i, c := range train {
		x[i] = c.Features
		y[i] = c.Label
	}
	f, err := forest.Train(x, y, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("triage: train: %w", err)
	}
	out := make([]Classified, len(candidates))
	for i, c := range candidates {
		p, err := f.PredictProb(c.Features)
		if err != nil {
			return nil, nil, fmt.Errorf("triage: classify %s: %w", c.ID, err)
		}
		pred := 0
		if p >= 0.5 {
			pred = 1
		}
		out[i] = Classified{
			ID:          c.ID,
			Prob:        p,
			Predicted:   pred,
			Uncertainty: 1 - abs(2*p-1),
		}
	}
	return out, f, nil
}

// ConfusionMatrix is the 2x2 classification outcome of Table IV.
type ConfusionMatrix struct {
	// TrueBenign are benign cases classified benign; FalsePositive are
	// benign cases classified malicious; FalseNegative are malicious cases
	// classified benign; TruePositive are malicious cases classified
	// malicious.
	TrueBenign, FalsePositive, FalseNegative, TruePositive int
}

// Add records one (truth, prediction) outcome.
func (m *ConfusionMatrix) Add(truth, predicted int) {
	switch {
	case truth == 0 && predicted == 0:
		m.TrueBenign++
	case truth == 0 && predicted == 1:
		m.FalsePositive++
	case truth == 1 && predicted == 0:
		m.FalseNegative++
	default:
		m.TruePositive++
	}
}

// Total returns the number of recorded cases.
func (m *ConfusionMatrix) Total() int {
	return m.TrueBenign + m.FalsePositive + m.FalseNegative + m.TruePositive
}

// FalsePositiveRate returns FP / (FP + TN), 0 for an empty benign class.
func (m *ConfusionMatrix) FalsePositiveRate() float64 {
	denom := m.FalsePositive + m.TrueBenign
	if denom == 0 {
		return 0
	}
	return float64(m.FalsePositive) / float64(denom)
}

// Evaluate builds the confusion matrix of classifications against the
// ground-truth labels keyed by case ID. Cases without a label are skipped
// and counted in the second return value.
func Evaluate(classified []Classified, truth map[string]int) (ConfusionMatrix, int) {
	var m ConfusionMatrix
	skipped := 0
	for _, c := range classified {
		label, ok := truth[c.ID]
		if !ok {
			skipped++
			continue
		}
		m.Add(label, c.Predicted)
	}
	return m, skipped
}

// ByUncertainty returns the classifications sorted most-uncertain first
// (ties broken by ID for determinism). This is the review order of
// Fig. 11.
func ByUncertainty(classified []Classified) []Classified {
	out := append([]Classified(nil), classified...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Uncertainty != out[j].Uncertainty {
			return out[i].Uncertainty > out[j].Uncertainty
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// FNReductionCurve reproduces Fig. 11: curve[k] is the number of false
// negatives remaining after manually examining (and thereby correcting)
// the first k cases in uncertainty order. curve[0] is the initial FN
// count; the slice has len(classified)+1 entries.
func FNReductionCurve(classified []Classified, truth map[string]int) []int {
	ordered := ByUncertainty(classified)
	fn := 0
	for _, c := range ordered {
		if truth[c.ID] == 1 && c.Predicted == 0 {
			fn++
		}
	}
	curve := make([]int, 0, len(ordered)+1)
	curve = append(curve, fn)
	remaining := fn
	for _, c := range ordered {
		if truth[c.ID] == 1 && c.Predicted == 0 {
			remaining--
		}
		curve = append(curve, remaining)
	}
	return curve
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
