// Package langmodel implements the character-level n-gram language model
// BAYWATCH uses to score domain names (Sect. V-C of the paper): a 3-gram
// model with interpolated Kneser–Ney smoothing trained on a popular-domain
// corpus. Natural domain names score high (google.com ≈ -7.4 in the
// paper); algorithmically generated names score far lower (≈ -45), so the
// score is a strong DGA indicator that feeds the weighted ranking.
package langmodel

import (
	"errors"
	"math"
	"strings"
)

const (
	// startMarker pads the left context of a name; endMarker terminates it.
	startMarker = '^'
	endMarker   = '$'
	// discount is the absolute Kneser–Ney discount D.
	discount = 0.75
	// alphabetSize approximates the number of distinct characters that can
	// appear in a (normalized) domain name; it anchors the unknown-character
	// floor of the unigram distribution.
	alphabetSize = 40
)

// ErrEmptyCorpus is returned when training on no data.
var ErrEmptyCorpus = errors.New("langmodel: empty training corpus")

// Model is a trained 3-gram character model. It is immutable after
// training and safe for concurrent use.
type Model struct {
	// trigram counts c(w1 w2 w3) keyed by the 3-character string.
	trigram map[string]int
	// bigram counts c(w1 w2).
	bigram map[string]int
	// triContinuations[w2w3] = |{w1 : c(w1 w2 w3) > 0}| — the Kneser–Ney
	// continuation counts of bigram types.
	triContinuations map[string]int
	// triContexts[w1w2] = |{w3 : c(w1 w2 w3) > 0}|.
	triContexts map[string]int
	// biContinuations[w3] = |{w2 : c(w2 w3) > 0}|.
	biContinuations map[string]int
	// biContexts[w2] = |{w3 : c(w2 w3) > 0}|.
	biContexts map[string]int
	// midContinuations[w2] = |{(w1,w3) pairs around w2}| used as the lower
	// -order normalizer N1+(•w2•).
	midContinuations map[string]int
	// totalBigramTypes = |{(w2,w3) : c(w2 w3) > 0}| — normalizer of the
	// unigram continuation distribution.
	totalBigramTypes int
	trained          bool
}

// Train builds the model from a corpus of domain names. Names are
// lowercased; empty entries are skipped.
func Train(domains []string) (*Model, error) {
	m := &Model{
		trigram:          make(map[string]int),
		bigram:           make(map[string]int),
		triContinuations: make(map[string]int),
		triContexts:      make(map[string]int),
		biContinuations:  make(map[string]int),
		biContexts:       make(map[string]int),
		midContinuations: make(map[string]int),
	}
	n := 0
	for _, d := range domains {
		d = normalize(d)
		if d == "" {
			continue
		}
		n++
		padded := string(startMarker) + string(startMarker) + d + string(endMarker)
		for i := 0; i+3 <= len(padded); i++ {
			tri := padded[i : i+3]
			bi := padded[i : i+2]
			if m.trigram[tri] == 0 {
				m.triContinuations[tri[1:]]++
				m.triContexts[bi]++
				m.midContinuations[tri[1:2]]++
			}
			m.trigram[tri]++
			m.bigram[bi]++
		}
	}
	if n == 0 {
		return nil, ErrEmptyCorpus
	}
	// Derive bigram-type statistics from the trigram continuation table:
	// every key of triContinuations is a distinct observed bigram (w2 w3).
	for biKey := range m.triContinuations {
		m.biContinuations[biKey[1:]]++
		m.biContexts[biKey[:1]]++
		m.totalBigramTypes++
	}
	m.trained = true
	return m, nil
}

// normalize lowercases and strips whitespace; scoring and training must
// agree on the transformation.
func normalize(domain string) string {
	return strings.ToLower(strings.TrimSpace(domain))
}

// Score returns log P(domain) under the model (natural log): the sum of
// per-character conditional log-probabilities, including the terminating
// end marker. More negative means less natural. Scoring an empty name
// yields 0.
func (m *Model) Score(domain string) float64 {
	d := normalize(domain)
	if d == "" || !m.trained {
		return 0
	}
	padded := string(startMarker) + string(startMarker) + d + string(endMarker)
	var logp float64
	for i := 0; i+3 <= len(padded); i++ {
		p := m.probTrigram(padded[i:i+2], padded[i+2:i+3])
		logp += math.Log(p)
	}
	return logp
}

// PerCharScore returns Score normalized by the name length, making scores
// comparable across names of different lengths.
func (m *Model) PerCharScore(domain string) float64 {
	d := normalize(domain)
	if d == "" {
		return 0
	}
	return m.Score(d) / float64(len(d)+1)
}

// probTrigram computes the interpolated Kneser–Ney probability
// P(w3 | w1 w2).
func (m *Model) probTrigram(ctx, w3 string) float64 {
	lower := m.probBigram(ctx[1:], w3)
	c := float64(m.bigram[ctx])
	if c == 0 {
		return lower
	}
	tri := float64(m.trigram[ctx+w3])
	types := float64(m.triContexts[ctx])
	p := math.Max(tri-discount, 0)/c + discount*types/c*lower
	return p
}

// probBigram computes P(w3 | w2) over continuation counts.
func (m *Model) probBigram(w2, w3 string) float64 {
	lower := m.probUnigram(w3)
	norm := float64(m.midContinuations[w2])
	if norm == 0 {
		return lower
	}
	cont := float64(m.triContinuations[w2+w3])
	types := float64(m.biContexts[w2])
	return math.Max(cont-discount, 0)/norm + discount*types/norm*lower
}

// probUnigram is the continuation-count unigram distribution with a
// uniform floor for never-seen characters.
func (m *Model) probUnigram(w3 string) float64 {
	total := float64(m.totalBigramTypes)
	if total == 0 {
		return 1.0 / alphabetSize
	}
	cont := float64(m.biContinuations[w3])
	// Reserve a small uniform mass for unseen characters.
	const unseenMass = 0.01
	return (1-unseenMass)*(cont/total) + unseenMass/alphabetSize
}
