package langmodel

import (
	"os"
	"path/filepath"
	"testing"

	"baywatch/internal/corpus"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m, err := Train(corpus.PopularDomains(2000, 42))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "models", "lm.json.gz")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"google.com", "skmnikrzhrrzcjcxwfprgt.com", "newsworld.net", "a.b"} {
		if got, want := loaded.Score(d), m.Score(d); got != want {
			t.Errorf("Score(%q): loaded %v != original %v", d, got, want)
		}
	}
}

func TestSaveUntrained(t *testing.T) {
	var m Model
	if err := m.Save(filepath.Join(t.TempDir(), "x.gz")); err == nil {
		t.Error("expected error saving untrained model")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.gz")); err == nil {
		t.Error("expected error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.gz")
	if err := os.WriteFile(bad, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("expected error for non-gzip file")
	}
}

func TestSaveAtomic(t *testing.T) {
	m, err := Train(corpus.PopularDomains(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "lm.gz")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
}
