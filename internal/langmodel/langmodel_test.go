package langmodel

import (
	"math"
	"testing"

	"baywatch/internal/corpus"
)

func trainedModel(t *testing.T) *Model {
	t.Helper()
	m, err := Train(corpus.PopularDomains(20000, 42))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainEmptyCorpus(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Fatal("expected error for empty corpus")
	}
	if _, err := Train([]string{"", "  "}); err == nil {
		t.Fatal("expected error for corpus of empty names")
	}
}

func TestScoreSeparatesNaturalFromDGA(t *testing.T) {
	m := trainedModel(t)
	natural := []string{
		"google.com", "timenews.com", "worldbank.org", "cloudstore.net",
		"dailynews.com", "smartshop.io",
	}
	dga := corpus.DGADomains(20, corpus.DGAUniform, 99)

	var worstNatural = math.Inf(-1) * -1 // +Inf placeholder replaced below
	worstNatural = math.Inf(1)
	for _, d := range natural {
		s := m.Score(d)
		if s >= 0 {
			t.Errorf("Score(%q) = %v, want negative log-prob", d, s)
		}
		if s < worstNatural {
			worstNatural = s
		}
	}
	var bestDGA = math.Inf(-1)
	for _, d := range dga {
		if s := m.Score(d); s > bestDGA {
			bestDGA = s
		}
	}
	if bestDGA >= worstNatural {
		t.Errorf("DGA best score %.2f >= natural worst %.2f; no separation", bestDGA, worstNatural)
	}
}

func TestScoreMagnitudesMatchPaperShape(t *testing.T) {
	// The paper reports google.com ~ -7.4 and a 22-char DGA ~ -45. Our
	// corpus differs, so only the shape is checked: short natural names in
	// the single digits to -20s, long DGA names several times lower.
	m := trainedModel(t)
	gs := m.Score("google.com")
	if gs > -2 || gs < -30 {
		t.Errorf("Score(google.com) = %.2f, expected a moderate negative value", gs)
	}
	ds := m.Score("skmnikrzhrrzcjcxwfprgt.com")
	if ds > gs-15 {
		t.Errorf("DGA score %.2f not far below google.com score %.2f", ds, gs)
	}
}

func TestScoreEmptyAndCaseInsensitive(t *testing.T) {
	m := trainedModel(t)
	if s := m.Score(""); s != 0 {
		t.Errorf("Score(\"\") = %v, want 0", s)
	}
	if m.Score("GOOGLE.COM") != m.Score("google.com") {
		t.Error("scoring must be case-insensitive")
	}
	if m.Score(" google.com ") != m.Score("google.com") {
		t.Error("scoring must trim whitespace")
	}
}

func TestScoreUnseenCharactersFinite(t *testing.T) {
	m := trainedModel(t)
	s := m.Score("xn--?!@#$%.com")
	if math.IsInf(s, 0) || math.IsNaN(s) {
		t.Errorf("score with unseen characters = %v, want finite", s)
	}
}

func TestPerCharScore(t *testing.T) {
	m := trainedModel(t)
	short := m.PerCharScore("news.com")
	long := m.PerCharScore("newsnewsnewsnews.com")
	// Per-character scores are length-normalized: both natural names land
	// in a similar band.
	if math.Abs(short-long) > 1.5 {
		t.Errorf("per-char scores diverge: %v vs %v", short, long)
	}
	if m.PerCharScore("") != 0 {
		t.Error("PerCharScore of empty name must be 0")
	}
	// DGA per-char well below natural per-char.
	dga := m.PerCharScore("skmnikrzhrrzcjcxwfprgt.com")
	if dga >= short {
		t.Errorf("DGA per-char %.3f >= natural per-char %.3f", dga, short)
	}
}

func TestProbabilitiesAreDistributions(t *testing.T) {
	// For a few contexts, the conditional probabilities over a broad
	// character set must sum to <= 1 + tolerance (the remainder is mass on
	// characters outside the sampled set).
	m := trainedModel(t)
	chars := "abcdefghijklmnopqrstuvwxyz0123456789.-$"
	for _, ctx := range []string{"go", "ne", "^^", "om", "zz", "q7"} {
		var sum float64
		for _, c := range chars {
			sum += m.probTrigram(ctx, string(c))
		}
		if sum > 1.01 {
			t.Errorf("context %q: probability mass %v > 1", ctx, sum)
		}
		if sum < 0.5 {
			t.Errorf("context %q: probability mass %v suspiciously low", ctx, sum)
		}
	}
}

func TestScoreDeterministic(t *testing.T) {
	m1 := trainedModel(t)
	m2 := trainedModel(t)
	for _, d := range []string{"google.com", "abcxyz.net", "update.software.com"} {
		if m1.Score(d) != m2.Score(d) {
			t.Errorf("non-deterministic score for %q", d)
		}
	}
}

func BenchmarkScore(b *testing.B) {
	m, err := Train(corpus.PopularDomains(20000, 42))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score("cdn.5f75b1c54f82d4.com")
	}
}
