package langmodel

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// modelSnapshot is the JSON persistence format. Count maps serialize
// directly; the format is versioned so future smoothing changes can evolve
// it.
type modelSnapshot struct {
	Version          int            `json:"version"`
	Trigram          map[string]int `json:"trigram"`
	Bigram           map[string]int `json:"bigram"`
	TriContinuations map[string]int `json:"triContinuations"`
	TriContexts      map[string]int `json:"triContexts"`
	BiContinuations  map[string]int `json:"biContinuations"`
	BiContexts       map[string]int `json:"biContexts"`
	MidContinuations map[string]int `json:"midContinuations"`
	TotalBigramTypes int            `json:"totalBigramTypes"`
}

const snapshotVersion = 1

// Save writes the trained model to path as gzip-compressed JSON,
// atomically (temp file + rename). Deployments train once on the popular-
// domain corpus and reload for each daily run.
func (m *Model) Save(path string) error {
	if !m.trained {
		return fmt.Errorf("langmodel: cannot save untrained model")
	}
	snap := modelSnapshot{
		Version:          snapshotVersion,
		Trigram:          m.trigram,
		Bigram:           m.bigram,
		TriContinuations: m.triContinuations,
		TriContexts:      m.triContexts,
		BiContinuations:  m.biContinuations,
		BiContexts:       m.biContexts,
		MidContinuations: m.midContinuations,
		TotalBigramTypes: m.totalBigramTypes,
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("langmodel: mkdir: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("langmodel: create: %w", err)
	}
	gz := gzip.NewWriter(f)
	if err := json.NewEncoder(gz).Encode(snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("langmodel: encode: %w", err)
	}
	if err := gz.Close(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("langmodel: gzip: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("langmodel: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("langmodel: rename: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("langmodel: open: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("langmodel: gzip: %w", err)
	}
	defer gz.Close()
	var snap modelSnapshot
	if err := json.NewDecoder(gz).Decode(&snap); err != nil {
		return nil, fmt.Errorf("langmodel: decode: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("langmodel: unsupported snapshot version %d", snap.Version)
	}
	m := &Model{
		trigram:          orEmpty(snap.Trigram),
		bigram:           orEmpty(snap.Bigram),
		triContinuations: orEmpty(snap.TriContinuations),
		triContexts:      orEmpty(snap.TriContexts),
		biContinuations:  orEmpty(snap.BiContinuations),
		biContexts:       orEmpty(snap.BiContexts),
		midContinuations: orEmpty(snap.MidContinuations),
		totalBigramTypes: snap.TotalBigramTypes,
		trained:          true,
	}
	return m, nil
}

func orEmpty(m map[string]int) map[string]int {
	if m == nil {
		return make(map[string]int)
	}
	return m
}
