// Package casefile defines the JSON interchange format between the
// pipeline CLI (which exports candidate beaconing cases) and the triage
// CLI (which trains/applies the classifier): one Case per candidate pair,
// carrying the Table II feature vector and the ranking indicators, plus a
// labels file mapping case IDs to analyst verdicts.
package casefile

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Case is one candidate communication pair as exported by the pipeline.
type Case struct {
	// ID is "source|destination", unique per pair.
	ID string `json:"id"`
	// Source and Destination identify the pair.
	Source      string `json:"source"`
	Destination string `json:"destination"`
	// Features is the classifier input vector (see baywatch.FeatureNames).
	Features []float64 `json:"features"`
	// Score is the weighted ranking score.
	Score float64 `json:"score"`
	// Periods are the detected periods in seconds, strongest first.
	Periods []float64 `json:"periods"`
	// LMScore is the destination's language-model log-probability.
	LMScore float64 `json:"lmScore"`
}

// Write stores cases as indented JSON, atomically.
func Write(path string, cases []Case) error {
	data, err := json.MarshalIndent(cases, "", "  ")
	if err != nil {
		return fmt.Errorf("casefile: marshal: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("casefile: mkdir: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("casefile: write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("casefile: rename: %w", err)
	}
	return nil
}

// Read loads a case file and validates its shape: non-empty IDs and a
// consistent feature dimension.
func Read(path string) ([]Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("casefile: read: %w", err)
	}
	var cases []Case
	if err := json.Unmarshal(data, &cases); err != nil {
		return nil, fmt.Errorf("casefile: parse: %w", err)
	}
	dim := -1
	for i, c := range cases {
		if c.ID == "" {
			return nil, fmt.Errorf("casefile: case %d has empty id", i)
		}
		if dim == -1 {
			dim = len(c.Features)
		} else if len(c.Features) != dim {
			return nil, fmt.Errorf("casefile: case %q has %d features, others have %d", c.ID, len(c.Features), dim)
		}
	}
	return cases, nil
}

// ReadLabels loads a labels file: a JSON object mapping case ID to 0
// (benign) or 1 (malicious).
func ReadLabels(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("casefile: read labels: %w", err)
	}
	var labels map[string]int
	if err := json.Unmarshal(data, &labels); err != nil {
		return nil, fmt.Errorf("casefile: parse labels: %w", err)
	}
	for id, v := range labels {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("casefile: label for %q is %d, want 0 or 1", id, v)
		}
	}
	return labels, nil
}

// WriteLabels stores a labels file, atomically.
func WriteLabels(path string, labels map[string]int) error {
	data, err := json.MarshalIndent(labels, "", "  ")
	if err != nil {
		return fmt.Errorf("casefile: marshal labels: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("casefile: mkdir: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("casefile: write labels: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("casefile: rename labels: %w", err)
	}
	return nil
}
