package casefile

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sample() []Case {
	return []Case{
		{ID: "a|evil.com", Source: "a", Destination: "evil.com",
			Features: []float64{1, 2, 3}, Score: 0.9, Periods: []float64{60}, LMScore: -40},
		{ID: "b|ok.com", Source: "b", Destination: "ok.com",
			Features: []float64{4, 5, 6}, Score: 0.2, Periods: []float64{3600}, LMScore: -12},
	}
}

func TestCaseRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out", "cases.json")
	want := sample()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Read(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("expected error for missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := Read(bad); err == nil {
		t.Error("expected error for malformed JSON")
	}
	noID := filepath.Join(dir, "noid.json")
	os.WriteFile(noID, []byte(`[{"id":"","features":[1]}]`), 0o644)
	if _, err := Read(noID); err == nil {
		t.Error("expected error for empty id")
	}
	ragged := filepath.Join(dir, "ragged.json")
	os.WriteFile(ragged, []byte(`[{"id":"a","features":[1]},{"id":"b","features":[1,2]}]`), 0o644)
	if _, err := Read(ragged); err == nil {
		t.Error("expected error for ragged features")
	}
}

func TestLabelsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.json")
	want := map[string]int{"a|evil.com": 1, "b|ok.com": 0}
	if err := WriteLabels(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLabels(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("labels mismatch: %v vs %v", got, want)
	}
}

func TestReadLabelsValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadLabels(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("expected error for missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"x": 2}`), 0o644)
	if _, err := ReadLabels(bad); err == nil {
		t.Error("expected error for out-of-range label")
	}
}
