// Package stats implements the statistical machinery BAYWATCH's pruning and
// feature-extraction stages rely on: descriptive statistics, a one-sample
// Student t-test (with the incomplete beta function needed for its p-value),
// normal-distribution helpers, Shannon entropy, and one-dimensional Gaussian
// mixture models fitted by expectation-maximization with BIC model
// selection.
//
// Everything is implemented on the standard library alone; there is no
// external scientific-computing dependency.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by routines that need at least one observation.
var ErrNoData = errors.New("stats: no data")

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1 denominator) sample variance of xs.
// It returns 0 when fewer than two observations are supplied.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MeanStdDev returns Mean(xs) and StdDev(xs) in a single call, sharing the
// mean pass between the two. The arithmetic is identical to calling the two
// functions separately, so results are bit-for-bit equal; hot paths use this
// to avoid the redundant mean computation inside Variance.
//
//bw:noalloc called per candidate from the interval t-test hot path
func MeanStdDev(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the smallest element of xs and an error for empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs and an error for empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Median returns the middle value of xs (mean of the two middle values for
// even length). It does not modify xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile of xs (0 <= p <= 100) using linear
// interpolation between order statistics. It does not modify xs.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0, 100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
	Median       float64
}

// Summarize computes a Summary of xs. It returns an error for empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoData
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	med, _ := Median(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    mn,
		Max:    mx,
		Median: med,
	}, nil
}

// Entropy returns the Shannon entropy, in bits, of the distribution implied
// by the given counts. Zero counts are ignored; an empty or all-zero count
// vector has zero entropy.
func Entropy(counts []int) float64 {
	var total float64
	for _, c := range counts {
		if c > 0 {
			total += float64(c)
		}
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := float64(c) / total
		h -= p * math.Log2(p)
	}
	return h
}
