package stats

import (
	"errors"
	"math"
)

// RegularizedIncompleteBeta computes I_x(a, b), the regularized incomplete
// beta function, for a, b > 0 and 0 <= x <= 1, using the continued-fraction
// expansion of Numerical Recipes (betacf). It is the kernel of the Student-t
// CDF used by the pruning t-test.
func RegularizedIncompleteBeta(a, b, x float64) (float64, error) {
	if a <= 0 || b <= 0 {
		return 0, errors.New("stats: incomplete beta requires a, b > 0")
	}
	if x < 0 || x > 1 {
		return 0, errors.New("stats: incomplete beta requires x in [0, 1]")
	}
	if x == 0 {
		return 0, nil
	}
	if x == 1 { //bw:floatcmp domain boundary; exactly 1 has a closed form
		return 1, nil
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))

	// Use the continued fraction directly when x is below the switch point,
	// and the symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a) otherwise.
	if x < (a+1)/(a+b+2) {
		cf, err := betaContinuedFraction(a, b, x)
		if err != nil {
			return 0, err
		}
		return front * cf / a, nil
	}
	cf, err := betaContinuedFraction(b, a, 1-x)
	if err != nil {
		return 0, err
	}
	// front was computed for (a, b, x); recompute for the mirrored call.
	frontM := math.Exp(lbeta - la - lb + b*math.Log(1-x) + a*math.Log(x))
	return 1 - frontM*cf/b, nil
}

// betaContinuedFraction evaluates the Lentz continued fraction for the
// incomplete beta function.
func betaContinuedFraction(a, b, x float64) (float64, error) {
	const (
		maxIter = 300
		tiny    = 1e-300
		epsCF   = 1e-14
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsCF {
			return h, nil
		}
	}
	return 0, errors.New("stats: incomplete beta continued fraction did not converge")
}

// StudentTCDF returns P(T <= t) for a Student t distribution with df
// degrees of freedom.
func StudentTCDF(t, df float64) (float64, error) {
	if df <= 0 {
		return 0, errors.New("stats: t distribution requires df > 0")
	}
	if math.IsNaN(t) {
		return math.NaN(), nil
	}
	if math.IsInf(t, 1) {
		return 1, nil
	}
	if math.IsInf(t, -1) {
		return 0, nil
	}
	x := df / (df + t*t)
	ib, err := RegularizedIncompleteBeta(df/2, 0.5, x)
	if err != nil {
		return 0, err
	}
	p := ib / 2
	if t > 0 {
		return 1 - p, nil
	}
	return p, nil
}

// NormalCDF returns P(X <= x) for a normal distribution with the given mean
// and standard deviation. A non-positive sigma yields a step function.
func NormalCDF(x, mean, sigma float64) float64 {
	if sigma <= 0 {
		if x < mean {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc((mean-x)/(sigma*math.Sqrt2))
}

// NormalPDF returns the density of a normal distribution at x.
func NormalPDF(x, mean, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (x - mean) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// LogNormalPDF returns log(NormalPDF(x, mean, sigma)), computed without
// underflow for extreme z.
func LogNormalPDF(x, mean, sigma float64) float64 {
	if sigma <= 0 {
		return math.Inf(-1)
	}
	z := (x - mean) / sigma
	return -0.5*z*z - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
}
