package stats

import (
	"errors"
	"fmt"
	"math"

	"baywatch/internal/fmath"
)

// TTestResult holds the outcome of a one-sample Student t-test.
type TTestResult struct {
	// T is the test statistic (sampleMean - mu0) / (s / sqrt(n)).
	T float64
	// DF is the degrees of freedom, n - 1.
	DF float64
	// P is the two-sided p-value.
	P float64
	// N is the sample size.
	N int
	// SampleMean and SampleStdDev describe the observed sample.
	SampleMean, SampleStdDev float64
}

// ErrDegenerateSample is returned when a t-test sample has fewer than two
// observations.
var ErrDegenerateSample = errors.New("stats: t-test requires at least 2 observations")

// OneSampleTTest tests H0: mean(xs) == mu0 against the two-sided
// alternative. BAYWATCH's pruning step keeps a candidate period P when the
// test does NOT reject H0 (p >= alpha): rejection means the observed
// intervals are statistically inconsistent with P being the true period.
//
// A zero-variance sample is handled explicitly: if every observation equals
// mu0 the p-value is 1 (perfectly consistent); otherwise it is 0 (the
// observations are constant but different from mu0).
func OneSampleTTest(xs []float64, mu0 float64) (TTestResult, error) {
	n := len(xs)
	if n < 2 {
		return TTestResult{}, fmt.Errorf("%w: n=%d", ErrDegenerateSample, n)
	}
	mean := Mean(xs)
	sd := StdDev(xs)
	res := TTestResult{
		DF:           float64(n - 1),
		N:            n,
		SampleMean:   mean,
		SampleStdDev: sd,
	}
	if sd == 0 {
		// Zero variance collapses the test statistic; compare the means
		// with a tolerance so float noise does not flip P between 1 and 0.
		if fmath.Near(mean, mu0) {
			res.T = 0
			res.P = 1
		} else {
			res.T = math.Inf(sign(mean - mu0))
			res.P = 0
		}
		return res, nil
	}
	res.T = (mean - mu0) / (sd / math.Sqrt(float64(n)))
	cdf, err := StudentTCDF(-math.Abs(res.T), res.DF)
	if err != nil {
		return TTestResult{}, err
	}
	res.P = 2 * cdf
	if res.P > 1 {
		res.P = 1
	}
	return res, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
