package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegularizedIncompleteBetaBoundaries(t *testing.T) {
	v, err := RegularizedIncompleteBeta(2, 3, 0)
	if err != nil || v != 0 {
		t.Errorf("I_0(2,3) = %v, %v; want 0", v, err)
	}
	v, err = RegularizedIncompleteBeta(2, 3, 1)
	if err != nil || v != 1 {
		t.Errorf("I_1(2,3) = %v, %v; want 1", v, err)
	}
	if _, err := RegularizedIncompleteBeta(0, 1, 0.5); err == nil {
		t.Error("expected error for a = 0")
	}
	if _, err := RegularizedIncompleteBeta(1, -1, 0.5); err == nil {
		t.Error("expected error for b < 0")
	}
	if _, err := RegularizedIncompleteBeta(1, 1, 1.5); err == nil {
		t.Error("expected error for x > 1")
	}
	if _, err := RegularizedIncompleteBeta(1, 1, -0.5); err == nil {
		t.Error("expected error for x < 0")
	}
}

func TestRegularizedIncompleteBetaKnownValues(t *testing.T) {
	// I_x(1, 1) = x (uniform distribution CDF).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		v, err := RegularizedIncompleteBeta(1, 1, x)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(v, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v, want %v", x, v, x)
		}
	}
	// I_x(2, 2) = x^2 (3 - 2x).
	for _, x := range []float64{0.2, 0.5, 0.8} {
		v, err := RegularizedIncompleteBeta(2, 2, x)
		if err != nil {
			t.Fatal(err)
		}
		want := x * x * (3 - 2*x)
		if !almostEqual(v, want, 1e-12) {
			t.Errorf("I_%v(2,2) = %v, want %v", x, v, want)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	a, b, x := 3.5, 1.25, 0.37
	v1, _ := RegularizedIncompleteBeta(a, b, x)
	v2, _ := RegularizedIncompleteBeta(b, a, 1-x)
	if !almostEqual(v1, 1-v2, 1e-12) {
		t.Errorf("symmetry violated: %v vs %v", v1, 1-v2)
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// t distribution with df=1 is the standard Cauchy:
	// CDF(t) = 1/2 + atan(t)/pi.
	for _, tv := range []float64{-5, -1, 0, 1, 5} {
		got, err := StudentTCDF(tv, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.5 + math.Atan(tv)/math.Pi
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("StudentTCDF(%v, 1) = %v, want %v", tv, got, want)
		}
	}
	// Large df approaches the standard normal.
	got, err := StudentTCDF(1.96, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.975, 1e-3) {
		t.Errorf("StudentTCDF(1.96, 1e6) = %v, want ~0.975", got)
	}
	// Standard critical value: t(0.975, df=10) = 2.228...
	got, _ = StudentTCDF(2.228, 10)
	if !almostEqual(got, 0.975, 1e-3) {
		t.Errorf("StudentTCDF(2.228, 10) = %v, want ~0.975", got)
	}
}

func TestStudentTCDFSpecialInputs(t *testing.T) {
	if _, err := StudentTCDF(0, 0); err == nil {
		t.Error("expected error for df = 0")
	}
	v, _ := StudentTCDF(math.Inf(1), 5)
	if v != 1 {
		t.Errorf("CDF(+Inf) = %v, want 1", v)
	}
	v, _ = StudentTCDF(math.Inf(-1), 5)
	if v != 0 {
		t.Errorf("CDF(-Inf) = %v, want 0", v)
	}
	v, _ = StudentTCDF(math.NaN(), 5)
	if !math.IsNaN(v) {
		t.Errorf("CDF(NaN) = %v, want NaN", v)
	}
	v, _ = StudentTCDF(0, 7)
	if !almostEqual(v, 0.5, 1e-12) {
		t.Errorf("CDF(0) = %v, want 0.5", v)
	}
}

func TestNormalCDF(t *testing.T) {
	if got := NormalCDF(0, 0, 1); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Phi(0) = %v", got)
	}
	if got := NormalCDF(1.959964, 0, 1); !almostEqual(got, 0.975, 1e-6) {
		t.Errorf("Phi(1.96) = %v", got)
	}
	// Degenerate sigma: step function at the mean.
	if got := NormalCDF(4, 5, 0); got != 0 {
		t.Errorf("step CDF below mean = %v", got)
	}
	if got := NormalCDF(6, 5, 0); got != 1 {
		t.Errorf("step CDF above mean = %v", got)
	}
}

func TestNormalPDF(t *testing.T) {
	want := 1 / math.Sqrt(2*math.Pi)
	if got := NormalPDF(0, 0, 1); !almostEqual(got, want, 1e-12) {
		t.Errorf("pdf(0) = %v, want %v", got, want)
	}
	if got := NormalPDF(0, 0, 0); got != 0 {
		t.Errorf("pdf with sigma=0 = %v, want 0", got)
	}
	// LogNormalPDF agrees with log(NormalPDF) where the latter is finite.
	for _, x := range []float64{-3, 0, 2.5} {
		lg := LogNormalPDF(x, 1, 2)
		direct := math.Log(NormalPDF(x, 1, 2))
		if !almostEqual(lg, direct, 1e-10) {
			t.Errorf("LogNormalPDF(%v) = %v, want %v", x, lg, direct)
		}
	}
	if !math.IsInf(LogNormalPDF(0, 0, 0), -1) {
		t.Error("LogNormalPDF with sigma=0 should be -Inf")
	}
	// Far tail stays finite in log space.
	if v := LogNormalPDF(1000, 0, 1); math.IsInf(v, -1) || math.IsNaN(v) {
		t.Errorf("log pdf far tail = %v, want finite", v)
	}
}

// Property: the incomplete beta is monotone in x and bounded in [0, 1].
func TestIncompleteBetaMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.2 + rng.Float64()*10
		b := 0.2 + rng.Float64()*10
		prev := -1e-15
		for x := 0.0; x <= 1.0001; x += 0.05 {
			xc := math.Min(x, 1)
			v, err := RegularizedIncompleteBeta(a, b, xc)
			if err != nil || v < prev-1e-9 || v < -1e-12 || v > 1+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: t CDF is monotone in t and symmetric: CDF(-t) = 1 - CDF(t).
func TestStudentTCDFSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		df := 1 + rng.Float64()*50
		tv := rng.NormFloat64() * 3
		p1, err1 := StudentTCDF(tv, df)
		p2, err2 := StudentTCDF(-tv, df)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(p1+p2, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
