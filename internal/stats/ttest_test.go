package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestOneSampleTTestErrors(t *testing.T) {
	if _, err := OneSampleTTest(nil, 0); err == nil {
		t.Error("expected error for empty sample")
	}
	if _, err := OneSampleTTest([]float64{1}, 0); err == nil {
		t.Error("expected error for single observation")
	}
}

func TestOneSampleTTestKnownStatistic(t *testing.T) {
	// Sample {1,2,3,4,5}: mean 3, sd sqrt(2.5), n 5.
	xs := []float64{1, 2, 3, 4, 5}
	res, err := OneSampleTTest(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantT := (3.0 - 2.0) / (math.Sqrt(2.5) / math.Sqrt(5))
	if !almostEqual(res.T, wantT, 1e-12) {
		t.Errorf("T = %v, want %v", res.T, wantT)
	}
	if res.DF != 4 || res.N != 5 {
		t.Errorf("DF = %v, N = %d", res.DF, res.N)
	}
	// Reference p-value (R: t.test(1:5, mu=2)): t = 1.4142, p = 0.2302.
	if !almostEqual(res.P, 0.23019964, 1e-6) {
		t.Errorf("P = %v, want 0.23020", res.P)
	}
}

func TestOneSampleTTestExactMean(t *testing.T) {
	xs := []float64{10, 20, 30}
	res, err := OneSampleTTest(xs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 0 {
		t.Errorf("T = %v, want 0", res.T)
	}
	if !almostEqual(res.P, 1, 1e-12) {
		t.Errorf("P = %v, want 1", res.P)
	}
}

func TestOneSampleTTestZeroVariance(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	res, err := OneSampleTTest(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("P for exact constant match = %v, want 1", res.P)
	}
	res, err = OneSampleTTest(xs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Errorf("P for constant mismatch = %v, want 0", res.P)
	}
	if !math.IsInf(res.T, -1) {
		t.Errorf("T = %v, want -Inf (mean below mu0)", res.T)
	}
}

func TestOneSampleTTestPruningSemantics(t *testing.T) {
	// Intervals from a true 60 s beacon with small jitter: the true period
	// must NOT be rejected at alpha = 0.05, while a wrong period must be.
	rng := rand.New(rand.NewSource(42))
	intervals := make([]float64, 200)
	for i := range intervals {
		intervals[i] = 60 + rng.NormFloat64()*2
	}
	res, err := OneSampleTTest(intervals, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.05 {
		t.Errorf("true period rejected: p = %v", res.P)
	}
	res, err = OneSampleTTest(intervals, 55)
	if err != nil {
		t.Fatal(err)
	}
	if res.P >= 0.05 {
		t.Errorf("wrong period not rejected: p = %v", res.P)
	}
}

func TestOneSampleTTestLargeSampleCalibration(t *testing.T) {
	// Under H0, the p-value is approximately uniform: the rejection rate at
	// alpha = 0.05 over many repetitions should be near 5%.
	rng := rand.New(rand.NewSource(7))
	trials := 2000
	rejected := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 30)
		for j := range xs {
			xs[j] = 10 + rng.NormFloat64()
		}
		res, err := OneSampleTTest(xs, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejected++
		}
	}
	rate := float64(rejected) / float64(trials)
	if rate < 0.03 || rate > 0.07 {
		t.Errorf("rejection rate under H0 = %v, want ~0.05", rate)
	}
}
