package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestFitGMMErrors(t *testing.T) {
	if _, err := FitGMM([]float64{1, 2}, 0, GMMConfig{}); err == nil {
		t.Error("expected error for k = 0")
	}
	if _, err := FitGMM([]float64{1, 2}, 3, GMMConfig{}); err == nil {
		t.Error("expected error for k > n")
	}
	if _, err := FitBestGMM(nil, 3, GMMConfig{}); err == nil {
		t.Error("expected error for empty data")
	}
}

func TestFitGMMSingleComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 100 + rng.NormFloat64()*5
	}
	g, err := FitGMM(xs, 1, GMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(g.Weights[0], 1, 1e-9) {
		t.Errorf("weight = %v, want 1", g.Weights[0])
	}
	if math.Abs(g.Means[0]-100) > 1 {
		t.Errorf("mean = %v, want ~100", g.Means[0])
	}
	if math.Abs(g.StdDevs[0]-5) > 1 {
		t.Errorf("sd = %v, want ~5", g.StdDevs[0])
	}
}

func TestFitGMMTwoWellSeparatedComponents(t *testing.T) {
	// Conficker-like interval mixture: fast beacons ~7.5 s (many) and long
	// sleeps ~10800 s (few). Fig. 7 of the paper shows GMM recovering the
	// component means.
	rng := rand.New(rand.NewSource(2))
	var xs []float64
	for i := 0; i < 900; i++ {
		xs = append(xs, 7.5+rng.NormFloat64()*0.5)
	}
	for i := 0; i < 100; i++ {
		xs = append(xs, 10800+rng.NormFloat64()*60)
	}
	g, err := FitGMM(xs, 2, GMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	means := append([]float64(nil), g.Means...)
	sort.Float64s(means)
	if math.Abs(means[0]-7.5) > 1 {
		t.Errorf("fast component mean = %v, want ~7.5", means[0])
	}
	if math.Abs(means[1]-10800) > 200 {
		t.Errorf("slow component mean = %v, want ~10800", means[1])
	}
	// Weight ordering: the fast component holds ~90% of the mass.
	var fastW float64
	for j := range g.Means {
		if math.Abs(g.Means[j]-means[0]) < 1 {
			fastW = g.Weights[j]
		}
	}
	if math.Abs(fastW-0.9) > 0.05 {
		t.Errorf("fast component weight = %v, want ~0.9", fastW)
	}
}

func TestFitBestGMMSelectsCorrectOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))

	// Unimodal data: BIC must select k = 1.
	uni := make([]float64, 400)
	for i := range uni {
		uni[i] = 50 + rng.NormFloat64()*3
	}
	sel, err := FitBestGMM(uni, 4, GMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 1 {
		t.Errorf("unimodal: selected k = %d, want 1 (BICs %v)", sel.K, sel.BICs)
	}

	// Bimodal data: BIC must select k = 2.
	var bi []float64
	for i := 0; i < 300; i++ {
		bi = append(bi, 10+rng.NormFloat64())
	}
	for i := 0; i < 300; i++ {
		bi = append(bi, 200+rng.NormFloat64()*5)
	}
	sel, err = FitBestGMM(bi, 4, GMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 2 {
		t.Errorf("bimodal: selected k = %d, want 2 (BICs %v)", sel.K, sel.BICs)
	}
	if len(sel.BICs) != 4 {
		t.Errorf("len(BICs) = %d, want 4", len(sel.BICs))
	}
}

func TestFitGMMDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 100
	}
	g1, err := FitGMM(xs, 3, GMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := FitGMM(xs, 3, GMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range g1.Means {
		if g1.Means[j] != g2.Means[j] || g1.Weights[j] != g2.Weights[j] || g1.StdDevs[j] != g2.StdDevs[j] {
			t.Fatalf("non-deterministic fit: %+v vs %+v", g1, g2)
		}
	}
}

func TestFitGMMDuplicatedPoints(t *testing.T) {
	// All-identical observations must not produce NaNs (variance floor).
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 42
	}
	g, err := FitGMM(xs, 2, GMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range g.Means {
		if math.IsNaN(g.Means[j]) || math.IsNaN(g.StdDevs[j]) || g.StdDevs[j] <= 0 {
			t.Fatalf("degenerate component %d: %+v", j, g)
		}
	}
	if math.IsNaN(g.BIC) || math.IsInf(g.BIC, 0) {
		t.Errorf("BIC = %v", g.BIC)
	}
}

func TestGMMWeightsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	for k := 1; k <= 4; k++ {
		g, err := FitGMM(xs, k, GMMConfig{})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, w := range g.Weights {
			sum += w
		}
		if !almostEqual(sum, 1, 1e-6) {
			t.Errorf("k=%d: weights sum to %v", k, sum)
		}
	}
}

func TestDominantComponents(t *testing.T) {
	g := &GMM{
		Weights: []float64{0.46, 0.53, 0.01},
		Means:   []float64{175.12, 4.51, 82},
		StdDevs: []float64{1, 1, 1},
	}
	doms := g.DominantComponents(0.05)
	if len(doms) != 2 {
		t.Fatalf("dominant components = %v, want 2", doms)
	}
	if doms[0] != 4.51 || doms[1] != 175.12 {
		t.Errorf("doms = %v, want [4.51 175.12] (weight-ordered)", doms)
	}
	if all := g.DominantComponents(0); len(all) != 3 {
		t.Errorf("minWeight 0 should return all components, got %v", all)
	}
}

func TestFitBestGMMClampsK(t *testing.T) {
	xs := []float64{1, 2, 3}
	sel, err := FitBestGMM(xs, 10, GMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.BICs) != 3 {
		t.Errorf("BICs length = %d, want clamped to 3", len(sel.BICs))
	}
	sel, err = FitBestGMM(xs, 0, GMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 1 {
		t.Errorf("maxK=0 should clamp to 1, got k=%d", sel.K)
	}
}

func BenchmarkFitGMM_1000x3(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 1000)
	for i := range xs {
		switch i % 3 {
		case 0:
			xs[i] = 10 + rng.NormFloat64()
		case 1:
			xs[i] = 60 + rng.NormFloat64()*2
		default:
			xs[i] = 300 + rng.NormFloat64()*10
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitGMM(xs, 3, GMMConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
