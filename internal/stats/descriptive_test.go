package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance(single) = %v, want 0", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator = 32/7.
	if got := Variance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err == nil {
		t.Error("Min(nil) should error")
	}
	if _, err := Max(nil); err == nil {
		t.Error("Max(nil) should error")
	}
	xs := []float64{3, -1, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("Max = %v, %v", mx, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile(nil) should error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should error")
	}
	// Percentile must not reorder the caller's slice.
	ys := []float64{9, 1, 5}
	if _, err := Percentile(ys, 50); err != nil {
		t.Fatal(err)
	}
	if ys[0] != 9 || ys[1] != 1 || ys[2] != 5 {
		t.Errorf("Percentile mutated input: %v", ys)
	}
}

func TestMedianEvenLength(t *testing.T) {
	got, err := Median([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Median = %v, want 2.5", got)
	}
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) should error")
	}
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy(nil); got != 0 {
		t.Errorf("Entropy(nil) = %v", got)
	}
	if got := Entropy([]int{0, 0}); got != 0 {
		t.Errorf("Entropy(zeros) = %v", got)
	}
	// Uniform over 4 symbols = 2 bits.
	if got := Entropy([]int{5, 5, 5, 5}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Entropy(uniform4) = %v, want 2", got)
	}
	// Single symbol = 0 bits.
	if got := Entropy([]int{42}); got != 0 {
		t.Errorf("Entropy(single) = %v, want 0", got)
	}
	// Negative counts are ignored.
	if got := Entropy([]int{-3, 8}); got != 0 {
		t.Errorf("Entropy with negative counts = %v, want 0", got)
	}
}

// Property: variance is invariant under constant shift, scales with c^2.
func TestVarianceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 5
			shifted[i] = xs[i] + 1000
			scaled[i] = xs[i] * 3
		}
		v := Variance(xs)
		return almostEqual(Variance(shifted), v, 1e-6*(1+v)) &&
			almostEqual(Variance(scaled), 9*v, 1e-6*(1+9*v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: min <= percentile(p) <= max, monotone in p.
func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(xs, p)
			if err != nil || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		p0, _ := Percentile(xs, 0)
		p100, _ := Percentile(xs, 100)
		return p0 == mn && p100 == mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// MeanStdDev is annotated //bw:noalloc (it runs inside the per-candidate
// interval t-test); this pins the promise.
func TestMeanStdDevAllocs(t *testing.T) {
	xs := make([]float64, 512)
	for i := range xs {
		xs[i] = float64(i % 7)
	}
	allocs := testing.AllocsPerRun(20, func() {
		_, _ = MeanStdDev(xs)
	})
	if allocs != 0 {
		t.Errorf("MeanStdDev allocates: %v allocs/op, want 0", allocs)
	}
}
