package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// GMM is a one-dimensional Gaussian mixture model. BAYWATCH fits a GMM to
// the inter-request interval list of a communication pair: a multi-modal
// fit (selected by BIC) exposes multiple coexisting beaconing periods, such
// as Conficker's fast-beacon/long-sleep alternation.
type GMM struct {
	// Weights, Means and StdDevs are the per-component mixture parameters.
	// All three slices have the same length K.
	Weights []float64
	Means   []float64
	StdDevs []float64
	// LogLikelihood is the total log-likelihood of the training data under
	// the fitted model.
	LogLikelihood float64
	// BIC is the Bayesian information criterion: -2*logL + p*ln(n) with
	// p = 3K - 1 free parameters. Lower is better.
	BIC float64
	// Iterations is the number of EM iterations performed before
	// convergence (or the iteration cap).
	Iterations int
}

// GMMConfig controls the EM fit.
type GMMConfig struct {
	// MaxIterations caps the EM loop. Defaults to 200.
	MaxIterations int
	// Tolerance stops EM when the log-likelihood improvement per point
	// falls below it. Defaults to 1e-8.
	Tolerance float64
	// MinStdDev floors the component standard deviations to keep the
	// likelihood bounded when a component collapses onto duplicated points.
	// Defaults to 1e-3 times the data range (or 1e-6 absolute for
	// degenerate data).
	MinStdDev float64
}

func (c GMMConfig) withDefaults(xs []float64) GMMConfig {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 200
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-8
	}
	if c.MinStdDev <= 0 {
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		c.MinStdDev = (mx - mn) * 1e-3
		if c.MinStdDev <= 0 {
			c.MinStdDev = 1e-6
		}
	}
	return c
}

// ErrBadComponentCount is returned when k is not positive or exceeds the
// number of observations.
var ErrBadComponentCount = errors.New("stats: component count must be in [1, len(data)]")

// FitGMM fits a k-component mixture to xs with expectation-maximization.
// Initialization is deterministic (quantile-based), so repeated fits on the
// same data produce identical models — a requirement for reproducible
// pipeline runs.
func FitGMM(xs []float64, k int, cfg GMMConfig) (*GMM, error) {
	n := len(xs)
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d, n=%d", ErrBadComponentCount, k, n)
	}
	cfg = cfg.withDefaults(xs)

	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)

	g := &GMM{
		Weights: make([]float64, k),
		Means:   make([]float64, k),
		StdDevs: make([]float64, k),
	}
	// Quantile initialization: component j owns the j-th slice of the
	// sorted data.
	for j := 0; j < k; j++ {
		lo := j * n / k
		hi := (j + 1) * n / k
		if hi <= lo {
			hi = lo + 1
		}
		seg := sorted[lo:hi]
		g.Weights[j] = float64(len(seg)) / float64(n)
		g.Means[j] = Mean(seg)
		sd := StdDev(seg)
		if sd < cfg.MinStdDev {
			sd = cfg.MinStdDev
		}
		g.StdDevs[j] = sd
	}

	resp := make([][]float64, k)
	for j := range resp {
		resp[j] = make([]float64, n)
	}
	logW := make([]float64, k)

	prevLL := math.Inf(-1)
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		g.Iterations = iter
		for j := 0; j < k; j++ {
			logW[j] = math.Log(math.Max(g.Weights[j], 1e-300))
		}
		// E-step with log-sum-exp for numerical stability.
		var ll float64
		for i, x := range xs {
			maxLp := math.Inf(-1)
			for j := 0; j < k; j++ {
				lp := logW[j] + LogNormalPDF(x, g.Means[j], g.StdDevs[j])
				resp[j][i] = lp
				if lp > maxLp {
					maxLp = lp
				}
			}
			var sum float64
			for j := 0; j < k; j++ {
				sum += math.Exp(resp[j][i] - maxLp)
			}
			logSum := maxLp + math.Log(sum)
			ll += logSum
			for j := 0; j < k; j++ {
				resp[j][i] = math.Exp(resp[j][i] - logSum)
			}
		}
		g.LogLikelihood = ll

		// M-step.
		for j := 0; j < k; j++ {
			var nj, mu float64
			for i, x := range xs {
				nj += resp[j][i]
				mu += resp[j][i] * x
			}
			if nj < 1e-10 {
				// Dead component: re-seed it on the most extreme point to
				// keep the model full rank.
				g.Weights[j] = 1e-6
				g.Means[j] = sorted[n-1]
				g.StdDevs[j] = cfg.MinStdDev
				continue
			}
			mu /= nj
			var va float64
			for i, x := range xs {
				d := x - mu
				va += resp[j][i] * d * d
			}
			va /= nj
			g.Weights[j] = nj / float64(n)
			g.Means[j] = mu
			sd := math.Sqrt(va)
			if sd < cfg.MinStdDev {
				sd = cfg.MinStdDev
			}
			g.StdDevs[j] = sd
		}

		if ll-prevLL < cfg.Tolerance*float64(n) && iter > 1 {
			break
		}
		prevLL = ll
	}

	p := float64(3*k - 1)
	g.BIC = -2*g.LogLikelihood + p*math.Log(float64(n))
	return g, nil
}

// GMMSelection is the result of BIC-based model selection across component
// counts.
type GMMSelection struct {
	// Best is the model with the lowest BIC.
	Best *GMM
	// K is the chosen component count.
	K int
	// BICs[k-1] is the BIC of the k-component fit, for k = 1..len(BICs).
	BICs []float64
}

// FitBestGMM fits mixtures with 1..maxK components and returns the one with
// the lowest BIC, reproducing the "BIC vs #components" selection of the
// paper's Fig. 7. maxK is clamped to len(xs).
func FitBestGMM(xs []float64, maxK int, cfg GMMConfig) (*GMMSelection, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	if maxK < 1 {
		maxK = 1
	}
	if maxK > len(xs) {
		maxK = len(xs)
	}
	sel := &GMMSelection{BICs: make([]float64, 0, maxK)}
	for k := 1; k <= maxK; k++ {
		g, err := FitGMM(xs, k, cfg)
		if err != nil {
			return nil, err
		}
		sel.BICs = append(sel.BICs, g.BIC)
		if sel.Best == nil || g.BIC < sel.Best.BIC {
			sel.Best = g
			sel.K = k
		}
	}
	return sel, nil
}

// DominantComponents returns the means of components whose weight is at
// least minWeight, ordered by descending weight. These are the candidate
// periods a multi-modal interval distribution suggests.
func (g *GMM) DominantComponents(minWeight float64) []float64 {
	type comp struct{ w, m float64 }
	var cs []comp
	for j := range g.Weights {
		if g.Weights[j] >= minWeight {
			cs = append(cs, comp{g.Weights[j], g.Means[j]})
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].w > cs[j].w })
	out := make([]float64, len(cs))
	for i, c := range cs {
		out[i] = c.m
	}
	return out
}
