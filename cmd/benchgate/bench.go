package main

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// series collects one benchmark's repetitions across a -count=N run.
// Besides the standard ns/op and allocs/op columns, any custom
// b.ReportMetric unit ending in "/s" (pairs/s, MB/s, ...) is collected as a
// higher-is-better rate.
type series struct {
	nsOp     []float64
	allocsOp []float64
	rates    map[string][]float64
}

func (s *series) addRate(unit string, v float64) {
	if s.rates == nil {
		s.rates = make(map[string][]float64)
	}
	s.rates[unit] = append(s.rates[unit], v)
}

// parseBench extracts benchmark results from raw `go test -bench` output.
// A benchmark line looks like
//
//	BenchmarkName-8   	 1234	 123456 ns/op	 16 B/op	 2 allocs/op
//
// The -GOMAXPROCS suffix is stripped so baselines recorded on machines with
// different core counts still match.
func parseBench(out string) (map[string]*series, error) {
	runs := make(map[string]*series)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// fields[1] is the iteration count. A malformed or zero count means
		// the benchmark never actually ran (a crashed or truncated run), and
		// a gate that silently passes on such output is worse than useless —
		// fail the parse loudly instead.
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bad iteration count %q in line %q", fields[1], line)
		}
		if iters <= 0 {
			return nil, fmt.Errorf("zero repetitions in line %q: benchmark did not run", line)
		}
		s := runs[name]
		if s == nil {
			s = &series{}
			runs[name] = s
		}
		// The remaining fields are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			// ParseFloat accepts "NaN" and "Inf"; medians over them would
			// compare as neither greater nor smaller and pass every gate.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("non-finite value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; {
			case unit == "ns/op":
				s.nsOp = append(s.nsOp, v)
			case unit == "allocs/op":
				s.allocsOp = append(s.allocsOp, v)
			case strings.HasSuffix(unit, "/s"):
				s.addRate(unit, v)
			}
		}
	}
	return runs, nil
}

// median returns the middle order statistic (mean of the two middle values
// for even length); 0 for empty input.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// allocSlack is the allowed allocs/op growth for a given baseline median:
// 2% of the baseline, rounded down. For the zero-allocation hot-path
// benchmarks (baseline under 50 allocs/op) that is exactly zero — any
// growth fails, the §5d contract. Macro benchmarks whose steady state
// flows through sync.Pool (the ingest suite, hundreds to thousands of
// allocs/op) jitter by a few allocations run-to-run as GC clears pools;
// the proportional slack absorbs that noise without letting a real
// regression (a per-record or per-pair allocation) through.
func allocSlack(baseline float64) float64 {
	return math.Floor(baseline * 0.02)
}

// compare evaluates the current run against the baseline and renders a
// per-benchmark report. failed is true when any gate tripped. noise maps
// benchmark names to a wider time threshold for macro benchmarks whose
// medians drift more than the default band run-to-run (seconds-long ops
// integrate co-tenant load); their precise gating comes from in-run
// -min-ratio checks instead.
func compare(baseline, current map[string]*series, timeThreshold float64, noise map[string]float64) (report string, failed bool) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "%-45s %15s %15s %8s\n", "benchmark", "base ns/op", "curr ns/op", "delta")
	for _, name := range names {
		threshold := timeThreshold
		if wide, ok := noise[name]; ok && wide > threshold {
			threshold = wide
		}
		base := baseline[name]
		curr, ok := current[name]
		if !ok {
			fmt.Fprintf(&b, "%-45s MISSING from current run: FAIL\n", name)
			failed = true
			continue
		}
		// An empty sample list would yield median 0 and a vacuous pass;
		// refuse to compare instead.
		if len(base.nsOp) == 0 || len(curr.nsOp) == 0 {
			fmt.Fprintf(&b, "%-45s no ns/op samples (base %d, curr %d): FAIL\n", name, len(base.nsOp), len(curr.nsOp))
			failed = true
			continue
		}
		baseNs, currNs := median(base.nsOp), median(curr.nsOp)
		delta := 0.0
		if baseNs > 0 {
			delta = (currNs - baseNs) / baseNs
		}
		verdict := ""
		if delta > threshold {
			verdict = fmt.Sprintf("  FAIL: ns/op regressed %.1f%% (limit %.0f%%)", delta*100, threshold*100)
			failed = true
		}
		baseAllocs, currAllocs := median(base.allocsOp), median(curr.allocsOp)
		switch {
		case len(base.allocsOp) > 0 && len(curr.allocsOp) == 0:
			// The baseline tracks allocations but the current run has no
			// allocs/op column (run without -benchmem?): the allocation
			// gate would be skipped silently, so fail it explicitly.
			verdict += "  FAIL: allocs/op column missing from current run (baseline has it)"
			failed = true
		case len(base.allocsOp) > 0 && currAllocs > baseAllocs+allocSlack(baseAllocs):
			verdict += fmt.Sprintf("  FAIL: allocs/op regressed %.0f -> %.0f", baseAllocs, currAllocs)
			failed = true
		}
		// Custom rate metrics (unit ending "/s") are higher-is-better: the
		// current median must stay within the time threshold BELOW the
		// baseline. A rate tracked by the baseline but absent from the
		// current run fails like a missing allocs column would.
		rateUnits := make([]string, 0, len(base.rates))
		for unit := range base.rates {
			rateUnits = append(rateUnits, unit)
		}
		sort.Strings(rateUnits)
		for _, unit := range rateUnits {
			baseRate := median(base.rates[unit])
			currSamples := curr.rates[unit]
			if len(currSamples) == 0 {
				verdict += fmt.Sprintf("  FAIL: %s metric missing from current run (baseline has it)", unit)
				failed = true
				continue
			}
			currRate := median(currSamples)
			if currRate < baseRate*(1-threshold) {
				verdict += fmt.Sprintf("  FAIL: %s regressed %.0f -> %.0f (limit -%.0f%%)",
					unit, baseRate, currRate, threshold*100)
				failed = true
			}
		}
		fmt.Fprintf(&b, "%-45s %15.0f %15.0f %+7.1f%%%s\n", name, baseNs, currNs, delta*100, verdict)
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fmt.Fprintf(&b, "%-45s new benchmark (not in baseline)\n", name)
		}
	}
	if failed {
		b.WriteString("\nbenchgate: FAIL — performance regressed against BENCH_BASELINE.txt\n")
		b.WriteString("(if the regression is intended, regenerate the baseline with `make bench-baseline`)\n")
	} else {
		b.WriteString("\nbenchgate: PASS\n")
	}
	return b.String(), failed
}

// parseNoiseSpec parses one -noise override, "<benchmark>:<threshold>",
// e.g. "BenchmarkDetectPerPair:0.35".
func parseNoiseSpec(s string) (name string, threshold float64, err error) {
	i := strings.LastIndex(s, ":")
	if i <= 0 || i == len(s)-1 {
		return "", 0, fmt.Errorf("noise %q: want <benchmark>:<threshold>", s)
	}
	threshold, err = strconv.ParseFloat(s[i+1:], 64)
	if err != nil || threshold <= 0 || threshold >= 1 || math.IsNaN(threshold) {
		return "", 0, fmt.Errorf("noise %q: threshold must be a fraction in (0, 1)", s)
	}
	return s[:i], threshold, nil
}

// ratioSpec is one -min-ratio requirement: within the CURRENT run, the
// median of numerator's unit metric must be at least factor times the
// median of denominator's. The spec text is
// "<numerator>/<denominator>:<unit>:<factor>", e.g.
// "BenchmarkDetectBatch/BenchmarkDetectPerPair:pairs/s:2". Comparing
// within one run (not against the baseline) makes the gate insensitive to
// the machine: a slow runner scales both sides equally, but a change that
// erodes the batch speedup trips it anywhere.
type ratioSpec struct {
	num, den string
	unit     string
	factor   float64
}

func parseRatioSpec(s string) (ratioSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return ratioSpec{}, fmt.Errorf("min-ratio %q: want <num>/<den>:<unit>:<factor>", s)
	}
	names := strings.SplitN(parts[0], "/", 2)
	if len(names) != 2 || names[0] == "" || names[1] == "" {
		return ratioSpec{}, fmt.Errorf("min-ratio %q: benchmark pair must be <num>/<den>", s)
	}
	factor, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return ratioSpec{}, fmt.Errorf("min-ratio %q: bad factor %q", s, parts[2])
	}
	return ratioSpec{num: names[0], den: names[1], unit: parts[1], factor: factor}, nil
}

// metricMedian extracts the named unit's median for one benchmark: the
// standard ns/op and allocs/op columns or any collected rate metric.
func (s *series) metricMedian(unit string) (float64, bool) {
	switch unit {
	case "ns/op":
		if len(s.nsOp) == 0 {
			return 0, false
		}
		return median(s.nsOp), true
	case "allocs/op":
		if len(s.allocsOp) == 0 {
			return 0, false
		}
		return median(s.allocsOp), true
	default:
		xs := s.rates[unit]
		if len(xs) == 0 {
			return 0, false
		}
		return median(xs), true
	}
}

// checkRatios evaluates -min-ratio requirements against the current run.
// A missing benchmark or metric fails: a gate that silently skips because
// the benchmark was renamed is worse than useless.
func checkRatios(current map[string]*series, specs []ratioSpec) (report string, failed bool) {
	var b strings.Builder
	for _, spec := range specs {
		num, ok := current[spec.num]
		if !ok {
			fmt.Fprintf(&b, "min-ratio %s/%s: %s MISSING from current run: FAIL\n", spec.num, spec.den, spec.num)
			failed = true
			continue
		}
		den, ok := current[spec.den]
		if !ok {
			fmt.Fprintf(&b, "min-ratio %s/%s: %s MISSING from current run: FAIL\n", spec.num, spec.den, spec.den)
			failed = true
			continue
		}
		nv, ok := num.metricMedian(spec.unit)
		if !ok {
			fmt.Fprintf(&b, "min-ratio %s/%s: %s has no %s samples: FAIL\n", spec.num, spec.den, spec.num, spec.unit)
			failed = true
			continue
		}
		dv, ok := den.metricMedian(spec.unit)
		if !ok || dv == 0 {
			fmt.Fprintf(&b, "min-ratio %s/%s: %s has no usable %s samples: FAIL\n", spec.num, spec.den, spec.den, spec.unit)
			failed = true
			continue
		}
		ratio := nv / dv
		verdict := "ok"
		if ratio < spec.factor {
			verdict = fmt.Sprintf("FAIL (want >= %gx)", spec.factor)
			failed = true
		}
		fmt.Fprintf(&b, "min-ratio %s/%s %s: %.0f / %.0f = %.2fx %s\n",
			spec.num, spec.den, spec.unit, nv, dv, ratio, verdict)
	}
	return b.String(), failed
}
