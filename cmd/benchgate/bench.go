package main

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// series collects one benchmark's repetitions across a -count=N run.
type series struct {
	nsOp     []float64
	allocsOp []float64
}

// parseBench extracts benchmark results from raw `go test -bench` output.
// A benchmark line looks like
//
//	BenchmarkName-8   	 1234	 123456 ns/op	 16 B/op	 2 allocs/op
//
// The -GOMAXPROCS suffix is stripped so baselines recorded on machines with
// different core counts still match.
func parseBench(out string) (map[string]*series, error) {
	runs := make(map[string]*series)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// fields[1] is the iteration count. A malformed or zero count means
		// the benchmark never actually ran (a crashed or truncated run), and
		// a gate that silently passes on such output is worse than useless —
		// fail the parse loudly instead.
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bad iteration count %q in line %q", fields[1], line)
		}
		if iters <= 0 {
			return nil, fmt.Errorf("zero repetitions in line %q: benchmark did not run", line)
		}
		s := runs[name]
		if s == nil {
			s = &series{}
			runs[name] = s
		}
		// The remaining fields are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			// ParseFloat accepts "NaN" and "Inf"; medians over them would
			// compare as neither greater nor smaller and pass every gate.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("non-finite value %q in line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsOp = append(s.nsOp, v)
			case "allocs/op":
				s.allocsOp = append(s.allocsOp, v)
			}
		}
	}
	return runs, nil
}

// median returns the middle order statistic (mean of the two middle values
// for even length); 0 for empty input.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// allocSlack is the allowed allocs/op growth for a given baseline median:
// 2% of the baseline, rounded down. For the zero-allocation hot-path
// benchmarks (baseline under 50 allocs/op) that is exactly zero — any
// growth fails, the §5d contract. Macro benchmarks whose steady state
// flows through sync.Pool (the ingest suite, hundreds to thousands of
// allocs/op) jitter by a few allocations run-to-run as GC clears pools;
// the proportional slack absorbs that noise without letting a real
// regression (a per-record or per-pair allocation) through.
func allocSlack(baseline float64) float64 {
	return math.Floor(baseline * 0.02)
}

// compare evaluates the current run against the baseline and renders a
// per-benchmark report. failed is true when any gate tripped.
func compare(baseline, current map[string]*series, timeThreshold float64) (report string, failed bool) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "%-45s %15s %15s %8s\n", "benchmark", "base ns/op", "curr ns/op", "delta")
	for _, name := range names {
		base := baseline[name]
		curr, ok := current[name]
		if !ok {
			fmt.Fprintf(&b, "%-45s MISSING from current run: FAIL\n", name)
			failed = true
			continue
		}
		// An empty sample list would yield median 0 and a vacuous pass;
		// refuse to compare instead.
		if len(base.nsOp) == 0 || len(curr.nsOp) == 0 {
			fmt.Fprintf(&b, "%-45s no ns/op samples (base %d, curr %d): FAIL\n", name, len(base.nsOp), len(curr.nsOp))
			failed = true
			continue
		}
		baseNs, currNs := median(base.nsOp), median(curr.nsOp)
		delta := 0.0
		if baseNs > 0 {
			delta = (currNs - baseNs) / baseNs
		}
		verdict := ""
		if delta > timeThreshold {
			verdict = fmt.Sprintf("  FAIL: ns/op regressed %.1f%% (limit %.0f%%)", delta*100, timeThreshold*100)
			failed = true
		}
		baseAllocs, currAllocs := median(base.allocsOp), median(curr.allocsOp)
		switch {
		case len(base.allocsOp) > 0 && len(curr.allocsOp) == 0:
			// The baseline tracks allocations but the current run has no
			// allocs/op column (run without -benchmem?): the allocation
			// gate would be skipped silently, so fail it explicitly.
			verdict += "  FAIL: allocs/op column missing from current run (baseline has it)"
			failed = true
		case len(base.allocsOp) > 0 && currAllocs > baseAllocs+allocSlack(baseAllocs):
			verdict += fmt.Sprintf("  FAIL: allocs/op regressed %.0f -> %.0f", baseAllocs, currAllocs)
			failed = true
		}
		fmt.Fprintf(&b, "%-45s %15.0f %15.0f %+7.1f%%%s\n", name, baseNs, currNs, delta*100, verdict)
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fmt.Fprintf(&b, "%-45s new benchmark (not in baseline)\n", name)
		}
	}
	if failed {
		b.WriteString("\nbenchgate: FAIL — performance regressed against BENCH_BASELINE.txt\n")
		b.WriteString("(if the regression is intended, regenerate the baseline with `make bench-baseline`)\n")
	} else {
		b.WriteString("\nbenchgate: PASS\n")
	}
	return b.String(), failed
}
