package main

import (
	"strings"
	"testing"
)

const sampleOut = `goos: linux
goarch: amd64
pkg: baywatch/internal/dsp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPeriodogram_4096-8         	    5000	    200000 ns/op	      16 B/op	       2 allocs/op
BenchmarkPeriodogram_4096-8         	    5000	    220000 ns/op	      16 B/op	       2 allocs/op
BenchmarkPeriodogram_4096-8         	    5000	    210000 ns/op	      16 B/op	       2 allocs/op
BenchmarkAutocorrelationScratch_4096-8  	   10000	    100000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	baywatch/internal/dsp	3.1s
`

func TestParseBench(t *testing.T) {
	runs, err := parseBench(sampleOut)
	if err != nil {
		t.Fatal(err)
	}
	pg := runs["BenchmarkPeriodogram_4096"]
	if pg == nil {
		t.Fatal("BenchmarkPeriodogram_4096 not parsed (GOMAXPROCS suffix not stripped?)")
	}
	if len(pg.nsOp) != 3 {
		t.Fatalf("got %d repetitions, want 3", len(pg.nsOp))
	}
	if m := median(pg.nsOp); m != 210000 {
		t.Errorf("median ns/op = %v, want 210000", m)
	}
	acf := runs["BenchmarkAutocorrelationScratch_4096"]
	if acf == nil || len(acf.allocsOp) != 1 || acf.allocsOp[0] != 0 {
		t.Errorf("allocs/op not parsed: %+v", acf)
	}
}

func TestMedianEven(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("median = %v, want 2.5", m)
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 0 B/op 0 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1050 ns/op 0 B/op 0 allocs/op\n")
	report, failed := compare(base, curr, 0.10)
	if failed {
		t.Errorf("5%% growth under a 10%% threshold must pass:\n%s", report)
	}
}

func TestCompareTimeRegressionFails(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 0 B/op 0 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1200 ns/op 0 B/op 0 allocs/op\n")
	report, failed := compare(base, curr, 0.10)
	if !failed || !strings.Contains(report, "FAIL") {
		t.Errorf("20%% ns/op growth must fail:\n%s", report)
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 0 B/op 0 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1000 ns/op 64 B/op 1 allocs/op\n")
	report, failed := compare(base, curr, 0.10)
	if !failed || !strings.Contains(report, "allocs/op regressed") {
		t.Errorf("any allocs/op growth must fail:\n%s", report)
	}
}

func TestCompareAllocSlackAbsorbsPoolJitter(t *testing.T) {
	// Macro benchmarks with hundreds of allocs/op get 2% slack (GC
	// clearing sync.Pools makes them jitter by a few allocations)...
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 48728 B/op 272 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1000 ns/op 49280 B/op 273 allocs/op\n")
	report, failed := compare(base, curr, 0.10)
	if failed {
		t.Errorf("+1 alloc on a 272-alloc baseline must pass:\n%s", report)
	}
	// ...but growth beyond the slack still fails.
	curr, _ = parseBench("BenchmarkX-8 100 1000 ns/op 50000 B/op 280 allocs/op\n")
	report, failed = compare(base, curr, 0.10)
	if !failed || !strings.Contains(report, "allocs/op regressed") {
		t.Errorf("+8 allocs on a 272-alloc baseline must fail:\n%s", report)
	}
	// Small-alloc benchmarks (the zero-allocation hot path) get no slack.
	base, _ = parseBench("BenchmarkY-8 100 1000 ns/op 0 B/op 2 allocs/op\n")
	curr, _ = parseBench("BenchmarkY-8 100 1000 ns/op 64 B/op 3 allocs/op\n")
	report, failed = compare(base, curr, 0.10)
	if !failed || !strings.Contains(report, "allocs/op regressed") {
		t.Errorf("+1 alloc on a 2-alloc baseline must fail:\n%s", report)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op\nBenchmarkY-8 100 500 ns/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1000 ns/op\n")
	report, failed := compare(base, curr, 0.10)
	if !failed || !strings.Contains(report, "MISSING") {
		t.Errorf("a benchmark missing from the current run must fail:\n%s", report)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 16 B/op 2 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 400 ns/op 0 B/op 0 allocs/op\n")
	report, failed := compare(base, curr, 0.10)
	if failed {
		t.Errorf("improvements must pass:\n%s", report)
	}
}

// --- malformed-output hardening -----------------------------------------
// A gate that passes vacuously on garbage input is worse than no gate;
// these cases pin the loud-failure behavior.

func TestParseBenchRejectsNaN(t *testing.T) {
	_, err := parseBench("BenchmarkX-8 100 NaN ns/op 0 B/op 0 allocs/op\n")
	if err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("NaN ns/op must be rejected, got err = %v", err)
	}
}

func TestParseBenchRejectsInf(t *testing.T) {
	_, err := parseBench("BenchmarkX-8 100 1000 ns/op +Inf allocs/op\n")
	if err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("Inf allocs/op must be rejected, got err = %v", err)
	}
}

func TestParseBenchRejectsZeroRepetitions(t *testing.T) {
	_, err := parseBench("BenchmarkX-8 0 1000 ns/op 0 B/op 0 allocs/op\n")
	if err == nil || !strings.Contains(err.Error(), "zero repetitions") {
		t.Errorf("an iteration count of 0 must be rejected, got err = %v", err)
	}
}

func TestParseBenchRejectsBadIterationCount(t *testing.T) {
	_, err := parseBench("BenchmarkX-8 oops 1000 ns/op\n")
	if err == nil || !strings.Contains(err.Error(), "bad iteration count") {
		t.Errorf("a non-numeric iteration count must be rejected, got err = %v", err)
	}
}

func TestCompareMissingAllocsColumnFails(t *testing.T) {
	// Baseline tracks allocations; the current run was made without
	// -benchmem. Skipping the allocation gate silently would let an
	// alloc regression through, so this must fail.
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 0 B/op 0 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1000 ns/op\n")
	report, failed := compare(base, curr, 0.10)
	if !failed || !strings.Contains(report, "allocs/op column missing") {
		t.Errorf("current run without an allocs/op column must fail:\n%s", report)
	}
}

func TestCompareNoSamplesFails(t *testing.T) {
	// A series with no ns/op samples (e.g. a line carrying only B/op)
	// would otherwise compare 0 against 0 and pass vacuously.
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op\n")
	curr := map[string]*series{"BenchmarkX": {}}
	report, failed := compare(base, curr, 0.10)
	if !failed || !strings.Contains(report, "no ns/op samples") {
		t.Errorf("empty current sample list must fail:\n%s", report)
	}
}
