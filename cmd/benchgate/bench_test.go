package main

import (
	"strings"
	"testing"
)

const sampleOut = `goos: linux
goarch: amd64
pkg: baywatch/internal/dsp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPeriodogram_4096-8         	    5000	    200000 ns/op	      16 B/op	       2 allocs/op
BenchmarkPeriodogram_4096-8         	    5000	    220000 ns/op	      16 B/op	       2 allocs/op
BenchmarkPeriodogram_4096-8         	    5000	    210000 ns/op	      16 B/op	       2 allocs/op
BenchmarkAutocorrelationScratch_4096-8  	   10000	    100000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	baywatch/internal/dsp	3.1s
`

func TestParseBench(t *testing.T) {
	runs, err := parseBench(sampleOut)
	if err != nil {
		t.Fatal(err)
	}
	pg := runs["BenchmarkPeriodogram_4096"]
	if pg == nil {
		t.Fatal("BenchmarkPeriodogram_4096 not parsed (GOMAXPROCS suffix not stripped?)")
	}
	if len(pg.nsOp) != 3 {
		t.Fatalf("got %d repetitions, want 3", len(pg.nsOp))
	}
	if m := median(pg.nsOp); m != 210000 {
		t.Errorf("median ns/op = %v, want 210000", m)
	}
	acf := runs["BenchmarkAutocorrelationScratch_4096"]
	if acf == nil || len(acf.allocsOp) != 1 || acf.allocsOp[0] != 0 {
		t.Errorf("allocs/op not parsed: %+v", acf)
	}
}

func TestMedianEven(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("median = %v, want 2.5", m)
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 0 B/op 0 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1050 ns/op 0 B/op 0 allocs/op\n")
	report, failed := compare(base, curr, 0.10, nil)
	if failed {
		t.Errorf("5%% growth under a 10%% threshold must pass:\n%s", report)
	}
}

func TestCompareTimeRegressionFails(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 0 B/op 0 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1200 ns/op 0 B/op 0 allocs/op\n")
	report, failed := compare(base, curr, 0.10, nil)
	if !failed || !strings.Contains(report, "FAIL") {
		t.Errorf("20%% ns/op growth must fail:\n%s", report)
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 0 B/op 0 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1000 ns/op 64 B/op 1 allocs/op\n")
	report, failed := compare(base, curr, 0.10, nil)
	if !failed || !strings.Contains(report, "allocs/op regressed") {
		t.Errorf("any allocs/op growth must fail:\n%s", report)
	}
}

func TestCompareAllocSlackAbsorbsPoolJitter(t *testing.T) {
	// Macro benchmarks with hundreds of allocs/op get 2% slack (GC
	// clearing sync.Pools makes them jitter by a few allocations)...
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 48728 B/op 272 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1000 ns/op 49280 B/op 273 allocs/op\n")
	report, failed := compare(base, curr, 0.10, nil)
	if failed {
		t.Errorf("+1 alloc on a 272-alloc baseline must pass:\n%s", report)
	}
	// ...but growth beyond the slack still fails.
	curr, _ = parseBench("BenchmarkX-8 100 1000 ns/op 50000 B/op 280 allocs/op\n")
	report, failed = compare(base, curr, 0.10, nil)
	if !failed || !strings.Contains(report, "allocs/op regressed") {
		t.Errorf("+8 allocs on a 272-alloc baseline must fail:\n%s", report)
	}
	// Small-alloc benchmarks (the zero-allocation hot path) get no slack.
	base, _ = parseBench("BenchmarkY-8 100 1000 ns/op 0 B/op 2 allocs/op\n")
	curr, _ = parseBench("BenchmarkY-8 100 1000 ns/op 64 B/op 3 allocs/op\n")
	report, failed = compare(base, curr, 0.10, nil)
	if !failed || !strings.Contains(report, "allocs/op regressed") {
		t.Errorf("+1 alloc on a 2-alloc baseline must fail:\n%s", report)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op\nBenchmarkY-8 100 500 ns/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1000 ns/op\n")
	report, failed := compare(base, curr, 0.10, nil)
	if !failed || !strings.Contains(report, "MISSING") {
		t.Errorf("a benchmark missing from the current run must fail:\n%s", report)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 16 B/op 2 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 400 ns/op 0 B/op 0 allocs/op\n")
	report, failed := compare(base, curr, 0.10, nil)
	if failed {
		t.Errorf("improvements must pass:\n%s", report)
	}
}

// --- malformed-output hardening -----------------------------------------
// A gate that passes vacuously on garbage input is worse than no gate;
// these cases pin the loud-failure behavior.

func TestParseBenchRejectsNaN(t *testing.T) {
	_, err := parseBench("BenchmarkX-8 100 NaN ns/op 0 B/op 0 allocs/op\n")
	if err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("NaN ns/op must be rejected, got err = %v", err)
	}
}

func TestParseBenchRejectsInf(t *testing.T) {
	_, err := parseBench("BenchmarkX-8 100 1000 ns/op +Inf allocs/op\n")
	if err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("Inf allocs/op must be rejected, got err = %v", err)
	}
}

func TestParseBenchRejectsZeroRepetitions(t *testing.T) {
	_, err := parseBench("BenchmarkX-8 0 1000 ns/op 0 B/op 0 allocs/op\n")
	if err == nil || !strings.Contains(err.Error(), "zero repetitions") {
		t.Errorf("an iteration count of 0 must be rejected, got err = %v", err)
	}
}

func TestParseBenchRejectsBadIterationCount(t *testing.T) {
	_, err := parseBench("BenchmarkX-8 oops 1000 ns/op\n")
	if err == nil || !strings.Contains(err.Error(), "bad iteration count") {
		t.Errorf("a non-numeric iteration count must be rejected, got err = %v", err)
	}
}

func TestCompareMissingAllocsColumnFails(t *testing.T) {
	// Baseline tracks allocations; the current run was made without
	// -benchmem. Skipping the allocation gate silently would let an
	// alloc regression through, so this must fail.
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 0 B/op 0 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1000 ns/op\n")
	report, failed := compare(base, curr, 0.10, nil)
	if !failed || !strings.Contains(report, "allocs/op column missing") {
		t.Errorf("current run without an allocs/op column must fail:\n%s", report)
	}
}

func TestCompareNoSamplesFails(t *testing.T) {
	// A series with no ns/op samples (e.g. a line carrying only B/op)
	// would otherwise compare 0 against 0 and pass vacuously.
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op\n")
	curr := map[string]*series{"BenchmarkX": {}}
	report, failed := compare(base, curr, 0.10, nil)
	if !failed || !strings.Contains(report, "no ns/op samples") {
		t.Errorf("empty current sample list must fail:\n%s", report)
	}
}

// --- rate metrics and in-run ratio gates --------------------------------

func TestParseBenchCollectsRates(t *testing.T) {
	runs, err := parseBench("BenchmarkX-8 1 1000 ns/op 1234 pairs/s 0 B/op 0 allocs/op\n" +
		"BenchmarkX-8 1 1000 ns/op 1250 pairs/s 0 B/op 0 allocs/op\n")
	if err != nil {
		t.Fatal(err)
	}
	s := runs["BenchmarkX"]
	if s == nil || len(s.rates["pairs/s"]) != 2 {
		t.Fatalf("pairs/s not collected: %+v", s)
	}
	if m := median(s.rates["pairs/s"]); m != 1242 {
		t.Errorf("median pairs/s = %v, want 1242", m)
	}
}

func TestCompareRateWithinThresholdPasses(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 1 1000 ns/op 1000 pairs/s 0 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 1 1000 ns/op 950 pairs/s 0 allocs/op\n")
	report, failed := compare(base, curr, 0.10, nil)
	if failed {
		t.Errorf("5%% rate drop under a 10%% threshold must pass:\n%s", report)
	}
}

func TestCompareRateRegressionFails(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 1 1000 ns/op 1000 pairs/s 0 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 1 1000 ns/op 800 pairs/s 0 allocs/op\n")
	report, failed := compare(base, curr, 0.10, nil)
	if !failed || !strings.Contains(report, "pairs/s regressed") {
		t.Errorf("20%% rate drop must fail:\n%s", report)
	}
}

func TestCompareMissingRateMetricFails(t *testing.T) {
	// Baseline tracks pairs/s but the current run dropped the metric
	// (ReportMetric call removed?) — the gate must not skip silently.
	base, _ := parseBench("BenchmarkX-8 1 1000 ns/op 1000 pairs/s 0 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 1 1000 ns/op 0 allocs/op\n")
	report, failed := compare(base, curr, 0.10, nil)
	if !failed || !strings.Contains(report, "pairs/s metric missing") {
		t.Errorf("dropped rate metric must fail:\n%s", report)
	}
}

func TestCompareNoiseOverrideWidensBand(t *testing.T) {
	base, _ := parseBench("BenchmarkMacro-8 1 1000 ns/op 1000 pairs/s 0 allocs/op\n" +
		"BenchmarkTight-8 100 1000 ns/op 0 allocs/op\n")
	// 20% slower and 20% lower rate: fails at the default 10% band...
	curr, _ := parseBench("BenchmarkMacro-8 1 1200 ns/op 800 pairs/s 0 allocs/op\n" +
		"BenchmarkTight-8 100 1000 ns/op 0 allocs/op\n")
	report, failed := compare(base, curr, 0.10, nil)
	if !failed {
		t.Errorf("20%% drift without a noise override must fail:\n%s", report)
	}
	// ...passes with a 35% override on just that benchmark...
	report, failed = compare(base, curr, 0.10, map[string]float64{"BenchmarkMacro": 0.35})
	if failed {
		t.Errorf("20%% drift under a 35%% noise override must pass:\n%s", report)
	}
	// ...and the override does not loosen other benchmarks.
	curr, _ = parseBench("BenchmarkMacro-8 1 1000 ns/op 1000 pairs/s 0 allocs/op\n" +
		"BenchmarkTight-8 100 1200 ns/op 0 allocs/op\n")
	report, failed = compare(base, curr, 0.10, map[string]float64{"BenchmarkMacro": 0.35})
	if !failed || !strings.Contains(report, "BenchmarkTight") {
		t.Errorf("non-overridden benchmark must keep the tight band:\n%s", report)
	}
}

func TestParseNoiseSpec(t *testing.T) {
	name, threshold, err := parseNoiseSpec("BenchmarkDetectPerPair:0.35")
	if err != nil || name != "BenchmarkDetectPerPair" || threshold != 0.35 {
		t.Errorf("got (%q, %v, %v)", name, threshold, err)
	}
	for _, bad := range []string{"", "Bench", "Bench:", ":0.3", "Bench:0", "Bench:1.5", "Bench:-0.1", "Bench:NaN"} {
		if _, _, err := parseNoiseSpec(bad); err == nil {
			t.Errorf("noise spec %q must be rejected", bad)
		}
	}
}

func TestParseRatioSpec(t *testing.T) {
	spec, err := parseRatioSpec("BenchmarkDetectBatch/BenchmarkDetectPerPair:pairs/s:2")
	if err != nil {
		t.Fatal(err)
	}
	want := ratioSpec{num: "BenchmarkDetectBatch", den: "BenchmarkDetectPerPair", unit: "pairs/s", factor: 2}
	if spec != want {
		t.Errorf("spec = %+v, want %+v", spec, want)
	}
	for _, bad := range []string{"", "A/B:pairs/s", "A:pairs/s:2", "/B:pairs/s:2", "A/:pairs/s:2", "A/B:pairs/s:0", "A/B:pairs/s:-1", "A/B:pairs/s:NaN"} {
		if _, err := parseRatioSpec(bad); err == nil {
			t.Errorf("spec %q must be rejected", bad)
		}
	}
}

func TestCheckRatiosPassAndFail(t *testing.T) {
	curr, _ := parseBench("BenchmarkBatch-8 1 1000 ns/op 3000 pairs/s\n" +
		"BenchmarkSolo-8 1 1000 ns/op 1000 pairs/s\n")
	spec := ratioSpec{num: "BenchmarkBatch", den: "BenchmarkSolo", unit: "pairs/s", factor: 2}
	report, failed := checkRatios(curr, []ratioSpec{spec})
	if failed {
		t.Errorf("3x speedup under a 2x requirement must pass:\n%s", report)
	}
	spec.factor = 4
	report, failed = checkRatios(curr, []ratioSpec{spec})
	if !failed || !strings.Contains(report, "FAIL") {
		t.Errorf("3x speedup under a 4x requirement must fail:\n%s", report)
	}
}

func TestCheckRatiosMissingFails(t *testing.T) {
	curr, _ := parseBench("BenchmarkBatch-8 1 1000 ns/op 3000 pairs/s\n")
	// Denominator benchmark absent entirely.
	report, failed := checkRatios(curr, []ratioSpec{{num: "BenchmarkBatch", den: "BenchmarkSolo", unit: "pairs/s", factor: 2}})
	if !failed || !strings.Contains(report, "MISSING") {
		t.Errorf("missing denominator benchmark must fail:\n%s", report)
	}
	// Benchmark present but the metric was never reported.
	curr2, _ := parseBench("BenchmarkBatch-8 1 1000 ns/op 3000 pairs/s\nBenchmarkSolo-8 1 1000 ns/op\n")
	report, failed = checkRatios(curr2, []ratioSpec{{num: "BenchmarkBatch", den: "BenchmarkSolo", unit: "pairs/s", factor: 2}})
	if !failed || !strings.Contains(report, "no usable pairs/s samples") {
		t.Errorf("missing rate metric on denominator must fail:\n%s", report)
	}
}

func TestCheckRatiosNsOpUnit(t *testing.T) {
	// ns/op ratios work too (lower-is-better callers just invert the pair).
	curr, _ := parseBench("BenchmarkA-8 1 4000 ns/op\nBenchmarkB-8 1 1000 ns/op\n")
	report, failed := checkRatios(curr, []ratioSpec{{num: "BenchmarkA", den: "BenchmarkB", unit: "ns/op", factor: 3}})
	if failed {
		t.Errorf("4x ns/op ratio under a 3x requirement must pass:\n%s", report)
	}
}
