package main

import (
	"strings"
	"testing"
)

const sampleOut = `goos: linux
goarch: amd64
pkg: baywatch/internal/dsp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPeriodogram_4096-8         	    5000	    200000 ns/op	      16 B/op	       2 allocs/op
BenchmarkPeriodogram_4096-8         	    5000	    220000 ns/op	      16 B/op	       2 allocs/op
BenchmarkPeriodogram_4096-8         	    5000	    210000 ns/op	      16 B/op	       2 allocs/op
BenchmarkAutocorrelationScratch_4096-8  	   10000	    100000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	baywatch/internal/dsp	3.1s
`

func TestParseBench(t *testing.T) {
	runs, err := parseBench(sampleOut)
	if err != nil {
		t.Fatal(err)
	}
	pg := runs["BenchmarkPeriodogram_4096"]
	if pg == nil {
		t.Fatal("BenchmarkPeriodogram_4096 not parsed (GOMAXPROCS suffix not stripped?)")
	}
	if len(pg.nsOp) != 3 {
		t.Fatalf("got %d repetitions, want 3", len(pg.nsOp))
	}
	if m := median(pg.nsOp); m != 210000 {
		t.Errorf("median ns/op = %v, want 210000", m)
	}
	acf := runs["BenchmarkAutocorrelationScratch_4096"]
	if acf == nil || len(acf.allocsOp) != 1 || acf.allocsOp[0] != 0 {
		t.Errorf("allocs/op not parsed: %+v", acf)
	}
}

func TestMedianEven(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("median = %v, want 2.5", m)
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 0 B/op 0 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1050 ns/op 0 B/op 0 allocs/op\n")
	report, failed := compare(base, curr, 0.10)
	if failed {
		t.Errorf("5%% growth under a 10%% threshold must pass:\n%s", report)
	}
}

func TestCompareTimeRegressionFails(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 0 B/op 0 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1200 ns/op 0 B/op 0 allocs/op\n")
	report, failed := compare(base, curr, 0.10)
	if !failed || !strings.Contains(report, "FAIL") {
		t.Errorf("20%% ns/op growth must fail:\n%s", report)
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 0 B/op 0 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1000 ns/op 64 B/op 1 allocs/op\n")
	report, failed := compare(base, curr, 0.10)
	if !failed || !strings.Contains(report, "allocs/op regressed") {
		t.Errorf("any allocs/op growth must fail:\n%s", report)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op\nBenchmarkY-8 100 500 ns/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 1000 ns/op\n")
	report, failed := compare(base, curr, 0.10)
	if !failed || !strings.Contains(report, "MISSING") {
		t.Errorf("a benchmark missing from the current run must fail:\n%s", report)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base, _ := parseBench("BenchmarkX-8 100 1000 ns/op 16 B/op 2 allocs/op\n")
	curr, _ := parseBench("BenchmarkX-8 100 400 ns/op 0 B/op 0 allocs/op\n")
	report, failed := compare(base, curr, 0.10)
	if failed {
		t.Errorf("improvements must pass:\n%s", report)
	}
}
