// Command benchgate compares a `go test -bench` run against a committed
// baseline and fails (exit 1) on performance regressions. It is the CI
// bench gate: golang.org/x/perf/benchstat cannot be vendored here, so the
// comparison is implemented in-repo on the standard library alone.
//
// Usage:
//
//	benchgate -baseline BENCH_BASELINE.txt -current current.txt
//
// Both files hold raw `go test -bench ... -benchmem -count=N` output. Per
// benchmark, the median over the repetitions is compared:
//
//   - ns/op may grow by at most the time threshold (default 10%);
//   - allocs/op may grow by at most 2% of the baseline, rounded down —
//     exactly zero for the small-alloc hot-path benchmarks (the
//     zero-allocation contract), a few allocations of slack for macro
//     benchmarks whose pooled buffers jitter with GC timing;
//   - custom rate metrics (any unit ending "/s", e.g. pairs/s) are
//     higher-is-better and may shrink by at most the time threshold;
//   - a benchmark present in the baseline but missing from the current run
//     fails the gate (coverage must not silently shrink).
//
// Repeatable -min-ratio flags add machine-independent speedup gates WITHIN
// the current run: "-min-ratio BenchA/BenchB:pairs/s:2" requires BenchA's
// median pairs/s to be at least 2x BenchB's in the same run. Repeatable
// -noise flags widen the time threshold for named macro benchmarks whose
// seconds-long iterations integrate co-tenant load ("-noise
// BenchmarkDetectPerPair:0.35"); such benchmarks should carry a -min-ratio
// gate for their precise contract.
//
// Medians rather than means keep the gate robust to scheduler noise on
// shared CI runners, mirroring benchstat's use of order statistics.
package main

import (
	"flag"
	"fmt"
	"os"
)

// ratioFlags collects repeated -min-ratio specs.
type ratioFlags []ratioSpec

func (r *ratioFlags) String() string { return fmt.Sprintf("%d ratio gates", len(*r)) }

func (r *ratioFlags) Set(s string) error {
	spec, err := parseRatioSpec(s)
	if err != nil {
		return err
	}
	*r = append(*r, spec)
	return nil
}

// noiseFlags collects repeated -noise per-benchmark threshold overrides.
type noiseFlags map[string]float64

func (n noiseFlags) String() string { return fmt.Sprintf("%d noise overrides", len(n)) }

func (n noiseFlags) Set(s string) error {
	name, threshold, err := parseNoiseSpec(s)
	if err != nil {
		return err
	}
	n[name] = threshold
	return nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.txt", "committed baseline bench output")
	currentPath := flag.String("current", "", "bench output of the current run")
	timeThreshold := flag.Float64("time-threshold", 0.10, "allowed fractional ns/op growth")
	var ratios ratioFlags
	flag.Var(&ratios, "min-ratio", "in-run speedup gate <num>/<den>:<unit>:<factor> (repeatable)")
	noise := noiseFlags{}
	flag.Var(noise, "noise", "wider time threshold for a noisy macro benchmark, <benchmark>:<fraction> (repeatable)")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}

	baseline, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	current, err := parseFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	report, failed := compare(baseline, current, *timeThreshold, noise)
	fmt.Print(report)
	if len(ratios) > 0 {
		ratioReport, ratioFailed := checkRatios(current, ratios)
		fmt.Print(ratioReport)
		failed = failed || ratioFailed
	}
	if failed {
		os.Exit(1)
	}
}

func parseFile(path string) (map[string]*series, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	runs, err := parseBench(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return runs, nil
}
