// Command benchgate compares a `go test -bench` run against a committed
// baseline and fails (exit 1) on performance regressions. It is the CI
// bench gate: golang.org/x/perf/benchstat cannot be vendored here, so the
// comparison is implemented in-repo on the standard library alone.
//
// Usage:
//
//	benchgate -baseline BENCH_BASELINE.txt -current current.txt
//
// Both files hold raw `go test -bench ... -benchmem -count=N` output. Per
// benchmark, the median over the repetitions is compared:
//
//   - ns/op may grow by at most the time threshold (default 10%);
//   - allocs/op may grow by at most 2% of the baseline, rounded down —
//     exactly zero for the small-alloc hot-path benchmarks (the
//     zero-allocation contract), a few allocations of slack for macro
//     benchmarks whose pooled buffers jitter with GC timing;
//   - a benchmark present in the baseline but missing from the current run
//     fails the gate (coverage must not silently shrink).
//
// Medians rather than means keep the gate robust to scheduler noise on
// shared CI runners, mirroring benchstat's use of order statistics.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.txt", "committed baseline bench output")
	currentPath := flag.String("current", "", "bench output of the current run")
	timeThreshold := flag.Float64("time-threshold", 0.10, "allowed fractional ns/op growth")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}

	baseline, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	current, err := parseFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	report, failed := compare(baseline, current, *timeThreshold)
	fmt.Print(report)
	if failed {
		os.Exit(1)
	}
}

func parseFile(path string) (map[string]*series, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	runs, err := parseBench(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return runs, nil
}
