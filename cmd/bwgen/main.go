// Command bwgen generates a synthetic enterprise proxy-log trace with
// injected beaconing infections, writing per-day gzip log files, the DHCP
// lease log, and the ground-truth labels.
//
// Usage:
//
//	bwgen -out traces/demo -days 7 -hosts 200 -infections 5 [-seed 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"baywatch/internal/corpus"
	"baywatch/internal/proxylog"
	"baywatch/internal/synthetic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bwgen:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "trace", "output directory")
	days := flag.Int("days", 7, "simulated days")
	hosts := flag.Int("hosts", 200, "device population")
	infections := flag.Int("infections", 5, "number of injected C&C campaigns")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	cfg := synthetic.DefaultConfig()
	cfg.Seed = *seed
	cfg.Days = *days
	cfg.Hosts = *hosts
	periods := []float64{30, 63, 165, 180, 387, 600, 901, 1242}
	for i := 0; i < *infections; i++ {
		cfg.Infections = append(cfg.Infections, synthetic.Infection{
			Family:  fmt.Sprintf("Campaign%d", i+1),
			DGA:     corpus.DGAStyle(i%3 + 1),
			Clients: 1 + i%4,
			Period:  periods[i%len(periods)],
			Noise:   synthetic.NoiseConfig{JitterSigma: 3, MissProb: 0.05, AddProb: 0.05},
		})
	}

	tr, err := synthetic.Generate(cfg)
	if err != nil {
		return err
	}

	// Per-day gzip log files.
	writers := map[int]*proxylog.Writer{}
	defer func() {
		for _, w := range writers {
			w.Close()
		}
	}()
	for _, r := range tr.Records {
		day := int((r.Timestamp - cfg.Start) / 86400)
		w, ok := writers[day]
		if !ok {
			date := time.Unix(cfg.Start+int64(day)*86400, 0).UTC().Format("2006-01-02")
			path := filepath.Join(*out, "proxy-"+date+".log.gz")
			w, err = proxylog.NewWriter(path)
			if err != nil {
				return err
			}
			writers[day] = w
		}
		if err := w.Write(r); err != nil {
			return err
		}
	}
	for day, w := range writers {
		if err := w.Close(); err != nil {
			return err
		}
		delete(writers, day)
	}

	// DHCP leases and ground truth as JSON.
	if err := writeJSON(filepath.Join(*out, "dhcp-leases.json"), tr.Leases); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(*out, "ground-truth.json"), tr.Truth); err != nil {
		return err
	}

	fmt.Printf("wrote %d events over %d day(s) to %s (%d hosts, %d infections)\n",
		len(tr.Records), *days, *out, *hosts, len(cfg.Infections))
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
