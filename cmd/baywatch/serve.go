package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"baywatch/internal/pipeline"
	"baywatch/internal/source"
)

// stringList is a repeatable string flag (-follow a -follow b).
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// serveOpts carries the -serve flags.
type serveOpts struct {
	state         string
	follow        []string
	listen        []string
	httpIngest    []string
	query         string
	tick          time.Duration
	commitEvery   int
	lateness      int64
	retainWindows int
	casefile      string
	maxQueries    int
	stall         time.Duration
	scale         int64
	allowDegraded bool
}

// runServe is the always-on daemon mode: supervised sources feed the
// streaming engine, detection ticks incrementally, and state checkpoints
// crash-safely under o.state. The first SIGINT/SIGTERM drains (sources
// stop, a final checkpoint commits); a second aborts hard — the
// checkpoint protocol makes that recoverable, it just loses the drain's
// final commit.
func runServe(cfg pipeline.Config, o serveOpts) error {
	if o.state == "" {
		return fmt.Errorf("-serve requires -serve-state (the checkpoint directory)")
	}
	var conns []source.Connector
	for _, p := range o.follow {
		conns = append(conns, &source.FileFollower{Path: p})
	}
	for _, l := range o.listen {
		network, addr, ok := strings.Cut(l, ":")
		if !ok || (network != "tcp" && network != "unix") {
			return fmt.Errorf("-listen wants network:address with network tcp or unix, got %q", l)
		}
		conns = append(conns, &source.SocketSource{Network: network, Addr: addr})
	}
	for _, a := range o.httpIngest {
		conns = append(conns, &source.HTTPIngest{Addr: a})
	}
	if len(conns) == 0 {
		return fmt.Errorf("-serve needs at least one source: -follow, -listen or -http-ingest")
	}

	warnf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "warning: "+format+"\n", args...)
	}
	d, err := source.NewDaemon(source.DaemonConfig{
		Engine: source.Config{
			StateDir:      o.state,
			Scale:         o.scale,
			Lateness:      o.lateness,
			RetainWindows: o.retainWindows,
			Pipeline:      cfg,
			Logf:          warnf,
		},
		Connectors:   conns,
		TickInterval: o.tick,
		CommitEvery:  o.commitEvery,
		QueryAddr:    o.query,
		CasefilePath: o.casefile,
		MaxQueries:   o.maxQueries,
		StallTimeout: o.stall,
		Logf:         warnf,
	})
	if err != nil {
		return err
	}
	if rec := d.Engine().Recovery(); len(rec.Warnings) > 0 {
		fmt.Fprintf(os.Stderr, "warning: recovery repaired %d issue(s); quarantined: %d\n",
			len(rec.Warnings), len(rec.Quarantined))
	}
	for name, p := range d.Engine().Positions() {
		fmt.Printf("resuming source %s at record %d\n", name, p.Records)
	}
	fmt.Printf("serving: %d source(s), tick %s, state %s\n", len(conns), o.tick, o.state)
	if o.query != "" {
		fmt.Printf("query endpoint on %s (/ranked, /host?src=..., /status)\n", o.query)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	var draining atomic.Bool
	go func() {
		for range sigc {
			if draining.CompareAndSwap(false, true) {
				fmt.Fprintln(os.Stderr, "baywatch: signal received; stopping sources and taking a final checkpoint (signal again to abort)")
				cancel()
			} else {
				fmt.Fprintln(os.Stderr, "baywatch: second signal; aborting (the checkpoint protocol recovers the committed state)")
				os.Exit(130)
			}
		}
	}()

	if err := d.Run(ctx); err != nil {
		return err
	}
	st := d.Engine().Stats()
	fmt.Printf("\ndrained: %d pair(s), %d event(s) committed, %d tick(s), watermark %d, %d late event(s) dropped\n",
		st.Pairs, st.Events, st.Ticks, st.Watermark, st.LateDropped)
	if d.Degraded() && !o.allowDegraded {
		return errDegraded
	}
	return nil
}
