// Command baywatch runs the full 8-step beaconing-detection pipeline over
// a directory of proxy log files (as written by bwgen) and prints the
// ranked suspicious cases.
//
// Usage:
//
//	baywatch -logs traces/demo [-state state/novelty.json] [-top 25]
//	         [-scale 1] [-tau 0.01] [-percentile 90]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"baywatch/internal/casefile"
	"baywatch/internal/corpus"
	"baywatch/internal/features"
	"baywatch/internal/langmodel"
	"baywatch/internal/novelty"
	"baywatch/internal/pipeline"
	"baywatch/internal/proxylog"
	"baywatch/internal/whitelist"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "baywatch:", err)
		os.Exit(1)
	}
}

func run() error {
	logsDir := flag.String("logs", "", "directory of proxy-*.log[.gz] files (required)")
	statePath := flag.String("state", "", "novelty store path (optional; enables change detection across runs)")
	top := flag.Int("top", 25, "number of ranked cases to print")
	scale := flag.Int64("scale", 1, "time-series granularity in seconds")
	tau := flag.Float64("tau", 0.01, "local whitelist popularity threshold")
	percentile := flag.Float64("percentile", 90, "ranking score percentile threshold")
	whitelistSize := flag.Int("whitelist", 1000, "global whitelist size (top popular domains)")
	casesOut := flag.String("cases", "", "export candidate cases (with features) as JSON for bwtriage")
	lenient := flag.Int("lenient", 0, "skip up to N malformed log lines per file instead of aborting (0 = strict)")
	flag.Parse()
	if *logsDir == "" {
		flag.Usage()
		return fmt.Errorf("missing -logs")
	}

	// Load proxy logs.
	entries, err := filepath.Glob(filepath.Join(*logsDir, "proxy-*.log*"))
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no proxy-*.log files under %s", *logsDir)
	}
	sort.Strings(entries)
	var records []*proxylog.Record
	for _, path := range entries {
		var recs []*proxylog.Record
		var err error
		if *lenient > 0 {
			var stats proxylog.ReadStats
			recs, stats, err = proxylog.ReadAllLenient(path, *lenient)
			if stats.SkippedLines > 0 {
				fmt.Fprintf(os.Stderr, "warning: %s: skipped %d malformed line(s) (first: %s)\n",
					path, stats.SkippedLines, stats.FirstSkipped)
			}
		} else {
			recs, err = proxylog.ReadAll(path)
		}
		if err != nil {
			return fmt.Errorf("read %s: %w", path, err)
		}
		records = append(records, recs...)
	}
	fmt.Printf("loaded %d events from %d file(s)\n", len(records), len(entries))

	// Optional DHCP correlation.
	var corr *proxylog.Correlator
	leasePath := filepath.Join(*logsDir, "dhcp-leases.json")
	if data, err := os.ReadFile(leasePath); err == nil {
		var leases []proxylog.Lease
		if err := json.Unmarshal(data, &leases); err != nil {
			return fmt.Errorf("parse %s: %w", leasePath, err)
		}
		corr, err = proxylog.NewCorrelator(leases)
		if err != nil {
			return err
		}
		fmt.Printf("correlating sources against %d DHCP leases\n", len(leases))
	}

	// Novelty store.
	var store *novelty.Store
	if *statePath != "" {
		store, err = novelty.Load(*statePath)
		if err != nil {
			return err
		}
	}

	lm, err := langmodel.Train(corpus.PopularDomains(20000, 42))
	if err != nil {
		return err
	}
	cfg := pipeline.Config{
		Scale:          *scale,
		Global:         whitelist.NewGlobal(corpus.PopularDomains(*whitelistSize, 42)),
		LocalTau:       *tau,
		LM:             lm,
		Novelty:        store,
		RankPercentile: *percentile,
	}

	res, err := pipeline.Run(context.Background(), records, corr, cfg)
	if err != nil {
		return err
	}

	if res.Degraded {
		fmt.Fprintf(os.Stderr, "warning: run degraded: %d candidate(s) failed in-flight and were isolated\n", len(res.Errors))
		for _, ce := range res.Errors {
			fmt.Fprintf(os.Stderr, "warning:   %s -> %s (%s): %s\n", ce.Source, ce.Destination, ce.Stage, ce.Err)
		}
	}

	s := res.Stats
	fmt.Printf("\nfilter funnel: %d events -> %d pairs -> %d after global WL -> %d after local WL -> %d periodic -> %d after token filter -> %d after novelty -> %d reported\n",
		s.InputEvents, s.Pairs, s.AfterGlobalWhitelist, s.AfterLocalWhitelist,
		s.Periodic, s.AfterTokenFilter, s.AfterNovelty, s.Reported)
	fmt.Printf("timings: extract %s, popularity %s, detect %s, rank %s\n\n",
		s.ExtractTime.Round(1e6), s.PopularityTime.Round(1e6), s.DetectTime.Round(1e6), s.RankTime.Round(1e6))

	fmt.Printf("%-4s %-34s %-18s %-9s %-8s %-9s\n", "rank", "destination", "source", "period", "score", "lm-score")
	fmt.Println(strings.Repeat("-", 88))
	for i, c := range res.Reported {
		if i >= *top {
			break
		}
		period := "-"
		if len(c.Detection.Kept) > 0 {
			period = fmt.Sprintf("%.0fs", smallestPeriod(c))
		}
		fmt.Printf("%-4d %-34s %-18s %-9s %-8.3f %-9.1f\n",
			i+1, trim(c.Destination, 34), trim(c.Source, 18), period, c.Score, c.LMScore)
	}

	if store != nil {
		if err := store.Save(*statePath); err != nil {
			return err
		}
		d, p := store.Size()
		fmt.Printf("\nnovelty store saved to %s (%d destinations, %d pairs)\n", *statePath, d, p)
	}

	if *casesOut != "" {
		var cases []casefile.Case
		for _, c := range res.Candidates {
			if c.Detection == nil || !c.Detection.Periodic {
				continue
			}
			fc := features.Case{SimilarSources: c.SimilarSources}
			if c.Summary != nil {
				fc.Intervals = c.Summary.IntervalsSeconds()
			}
			if len(c.Detection.Kept) > 0 {
				fc.DominantPeriods = c.Detection.DominantPeriods()
				fc.Power = c.Detection.Kept[0].Power
				fc.ACFScore = c.Detection.Kept[0].ACFScore
			}
			cases = append(cases, casefile.Case{
				ID:          c.Source + "|" + c.Destination,
				Source:      c.Source,
				Destination: c.Destination,
				Features:    append(features.Vector(fc), c.LMScore, c.Popularity),
				Score:       c.Score,
				Periods:     c.Detection.DominantPeriods(),
				LMScore:     c.LMScore,
			})
		}
		if err := casefile.Write(*casesOut, cases); err != nil {
			return err
		}
		fmt.Printf("exported %d candidate cases to %s\n", len(cases), *casesOut)
	}
	return nil
}

func smallestPeriod(c *pipeline.Candidate) float64 {
	smallest := 1e18
	for _, k := range c.Detection.Kept {
		if p := k.BestPeriod(); p < smallest {
			smallest = p
		}
	}
	return smallest
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-2] + ".."
}
