// Command baywatch runs the full 8-step beaconing-detection pipeline over
// a directory of proxy log files (as written by bwgen) and prints the
// ranked suspicious cases.
//
// Usage:
//
//	baywatch -logs traces/demo [-state state/novelty.json] [-top 25]
//	         [-scale 1] [-tau 0.01] [-percentile 90]
//
// -shards N switches ingestion from the batch reader to the sharded
// streaming front end (internal/ingest): each log file is divided into up
// to N byte-range splits scanned by -ingest-workers parallel workers,
// with identical pipeline results (gzip files always scan as one shard;
// with -lenient the malformed-line budget applies per shard):
//
//	baywatch -logs traces/demo -shards 4 -ingest-workers 4
//
// -mr-workers N runs the detect stage's MapReduce job across N exec'd
// worker OS processes (this same binary re-exec'd in worker mode), with
// task leases, heartbeat liveness and a crash-safe coordinator journal;
// dead workers have their tasks re-executed on survivors. -mr-exec makes
// distributed execution mandatory — without it, a failure to spawn
// workers degrades to the in-process engine:
//
//	baywatch -logs traces/demo -mr-workers 4
//
// Operations mode treats each log file as one ingested day and commits it
// through the crash-safe operations loop:
//
//	baywatch -logs traces/demo -ops state/ops
//
// Serve mode (-serve) runs baywatch as an always-on streaming daemon:
// supervised sources (-follow tailed files, -listen sockets, -http-ingest
// endpoints) feed the engine continuously, detection re-runs
// incrementally every -tick, state checkpoints through a crash-safe
// journal in -serve-state, and -query serves the latest ranked pairs:
//
//	baywatch -serve -follow /var/log/proxy.log \
//	         -serve-state state/daemon -query 127.0.0.1:8478
//
// Exit codes: 0 success, 1 error, 3 the run completed but Degraded (shed
// or isolated work; suppressed by -allow-degraded), 130 interrupted by
// SIGINT/SIGTERM. In operations mode the first signal drains — the
// current day finishes and commits, leaving the manifest journal at a
// clean commit point — and a second signal aborts hard (the interrupted
// day rolls back and can be re-ingested). Serve mode drains the same way:
// the first signal stops the sources and takes a final checkpoint (exit 0,
// or 3 if the daemon had degraded), a second aborts hard — safe, because
// the checkpoint protocol makes a kill at any instant recoverable.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"baywatch/internal/casefile"
	"baywatch/internal/corpus"
	"baywatch/internal/features"
	"baywatch/internal/guard"
	"baywatch/internal/ingest"
	"baywatch/internal/langmodel"
	"baywatch/internal/mapreduce"
	"baywatch/internal/mrx"
	"baywatch/internal/novelty"
	"baywatch/internal/opsloop"
	"baywatch/internal/pipeline"
	"baywatch/internal/proxylog"
	"baywatch/internal/whitelist"
)

// Sentinel errors mapped to distinct exit codes in main.
var (
	errDegraded    = errors.New("run completed degraded (see warnings; -allow-degraded suppresses this exit code)")
	errInterrupted = errors.New("interrupted")
)

func main() {
	// Worker mode: when the multi-process MapReduce coordinator re-execs
	// this binary as a task worker, serve tasks and exit before any CLI
	// handling.
	mrx.MaybeWorker()
	err := run()
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "baywatch:", err)
	switch {
	case errors.Is(err, errInterrupted) || errors.Is(err, context.Canceled):
		os.Exit(130)
	case errors.Is(err, errDegraded):
		os.Exit(3)
	default:
		os.Exit(1)
	}
}

func run() error {
	logsDir := flag.String("logs", "", "directory of proxy-*.log[.gz] files (required)")
	statePath := flag.String("state", "", "novelty store path (optional; enables change detection across runs)")
	opsDir := flag.String("ops", "", "operations-loop state directory: ingest each log file as one day through the crash-safe ops loop")
	top := flag.Int("top", 25, "number of ranked cases to print")
	scale := flag.Int64("scale", 1, "time-series granularity in seconds")
	tau := flag.Float64("tau", 0.01, "local whitelist popularity threshold")
	percentile := flag.Float64("percentile", 90, "ranking score percentile threshold")
	whitelistSize := flag.Int("whitelist", 1000, "global whitelist size (top popular domains)")
	casesOut := flag.String("cases", "", "export candidate cases (with features) as JSON for bwtriage")
	lenient := flag.Int("lenient", 0, "skip up to N malformed log lines per file instead of aborting (0 = strict)")
	allowDegraded := flag.Bool("allow-degraded", false, "exit 0 even when the run completes degraded")
	stageTimeout := flag.Duration("stage-timeout", 0, "wall-clock bound per pipeline stage (0 = unbounded)")
	candidateTimeout := flag.Duration("candidate-timeout", 0, "wall-clock bound per candidate's detection/indication; overruns are parked as errors (0 = unbounded)")
	taskTimeout := flag.Duration("task-timeout", 0, "wall-clock bound per MapReduce task (0 = unbounded)")
	stallTimeout := flag.Duration("stall-timeout", 0, "watchdog bound: a worker silent this long has its task cancelled (0 = no watchdog)")
	maxEventsPerPair := flag.Int("max-events-per-pair", 0, "truncate pairs above this many events to their earliest events (0 = uncapped)")
	maxInFlight := flag.Int("max-inflight", 0, "bound on candidates admitted to detection concurrently (0 = unlimited)")
	failureBudget := flag.Int("failure-budget", 0, "MapReduce poisoned-input/key budget before a job aborts (0 = abort on first)")
	mrWorkers := flag.Int("mr-workers", 0, "run the detect stage's MapReduce job across this many exec'd worker processes (0 = in-process)")
	mrExec := flag.Bool("mr-exec", false, "require multi-process execution: fail instead of falling back in-process when workers cannot be spawned (implies -mr-workers GOMAXPROCS when unset)")
	shards := flag.Int("shards", 0, "sharded streaming ingest: byte-range splits per log file (0 = batch reader; gzip files always scan as one shard)")
	ingestWorkers := flag.Int("ingest-workers", 0, "parallel shard-scan workers for -shards (0 = GOMAXPROCS)")
	serve := flag.Bool("serve", false, "run as an always-on streaming daemon; sources come from -follow/-listen/-http-ingest instead of -logs")
	var follow, listen, httpIngest stringList
	flag.Var(&follow, "follow", "serve mode: tail this log file, surviving rotation and truncation (repeatable)")
	flag.Var(&listen, "listen", "serve mode: accept log lines on this stream socket, as network:address, e.g. tcp:127.0.0.1:9466 or unix:/run/bw.sock (repeatable)")
	flag.Var(&httpIngest, "http-ingest", "serve mode: accept POSTed log lines on this HTTP address (repeatable)")
	serveState := flag.String("serve-state", "", "serve mode: state directory for the crash-safe checkpoint (required with -serve)")
	queryAddr := flag.String("query", "", "serve mode: serve /ranked, /host and /status on this address")
	tickInterval := flag.Duration("tick", 30*time.Second, "serve mode: incremental-detection cadence")
	commitEvery := flag.Int("commit-every", 5000, "serve mode: checkpoint after this many ingested events (<0 disables count-based commits)")
	lateness := flag.Int64("lateness", 0, "serve mode: allowed event lateness in seconds; events behind the committed watermark are dropped (0 = accept any lateness)")
	retainWindows := flag.Int("retain-windows", 0, "serve mode: evict pairs idle longer than this many lateness windows, bounding memory and checkpoint size to active traffic (0 = retain forever; requires -lateness)")
	caseLabels := flag.String("casefile", "", "serve mode: bwtriage labels file; /ranked and /host responses carry each labeled pair's verdict, re-read when the file changes")
	maxQueries := flag.Int("max-queries", 16, "serve mode: concurrent query-endpoint requests before shedding with 503 (<0 = unlimited)")
	sourceStall := flag.Duration("source-stall", 0, "serve mode: a source silent this long is cancelled and restarted (0 = no source watchdog)")
	flag.Parse()

	lm, err := langmodel.Train(corpus.PopularDomains(20000, 42))
	if err != nil {
		return err
	}
	cfg := pipeline.Config{
		Scale:          *scale,
		Global:         whitelist.NewGlobal(corpus.PopularDomains(*whitelistSize, 42)),
		LocalTau:       *tau,
		LM:             lm,
		RankPercentile: *percentile,
		Guard: guard.Config{
			StageTimeout:     *stageTimeout,
			CandidateTimeout: *candidateTimeout,
			TaskTimeout:      *taskTimeout,
			StallTimeout:     *stallTimeout,
			MaxEventsPerPair: *maxEventsPerPair,
			MaxInFlight:      *maxInFlight,
			FailureBudget:    *failureBudget,
		},
	}
	if *mrExec && *mrWorkers <= 0 {
		*mrWorkers = runtime.GOMAXPROCS(0)
	}
	if *mrWorkers > 0 {
		cfg.Exec = mapreduce.ExecConfig{
			Workers:         *mrWorkers,
			DisableFallback: *mrExec,
		}
	}

	if *serve {
		return runServe(cfg, serveOpts{
			state:         *serveState,
			follow:        follow,
			listen:        listen,
			httpIngest:    httpIngest,
			query:         *queryAddr,
			tick:          *tickInterval,
			commitEvery:   *commitEvery,
			lateness:      *lateness,
			retainWindows: *retainWindows,
			casefile:      *caseLabels,
			maxQueries:    *maxQueries,
			stall:         *sourceStall,
			scale:         *scale,
			allowDegraded: *allowDegraded,
		})
	}
	if *logsDir == "" {
		flag.Usage()
		return fmt.Errorf("missing -logs (or -serve with streaming sources)")
	}

	entries, err := filepath.Glob(filepath.Join(*logsDir, "proxy-*.log*"))
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no proxy-*.log files under %s", *logsDir)
	}
	sort.Strings(entries)

	// Optional DHCP correlation.
	var corr *proxylog.Correlator
	leasePath := filepath.Join(*logsDir, "dhcp-leases.json")
	if data, err := os.ReadFile(leasePath); err == nil {
		var leases []proxylog.Lease
		if err := json.Unmarshal(data, &leases); err != nil {
			return fmt.Errorf("parse %s: %w", leasePath, err)
		}
		corr, err = proxylog.NewCorrelator(leases)
		if err != nil {
			return err
		}
		fmt.Printf("correlating sources against %d DHCP leases\n", len(leases))
	}

	ing := ingestOpts{shards: *shards, workers: *ingestWorkers, lenient: *lenient}
	if *opsDir != "" {
		if *statePath != "" {
			return fmt.Errorf("-state is managed by the ops loop; drop it when using -ops")
		}
		return runOps(*opsDir, entries, corr, cfg, ing, *top, *allowDegraded)
	}
	return runOnce(entries, corr, cfg, *statePath, ing, *top, *allowDegraded, *casesOut)
}

// ingestOpts selects and parameterizes the ingest path: shards == 0 is
// the batch reader (materialize all records, batch pipeline); shards >= 1
// is the sharded streaming ingest (each log file scanned as up to
// `shards` byte-range splits by parallel workers).
type ingestOpts struct {
	shards  int
	workers int
	lenient int
}

// streamOptions converts the CLI options to the pipeline's scan options.
func (o ingestOpts) streamOptions() pipeline.StreamOptions {
	return pipeline.StreamOptions{Workers: o.workers, MaxBadLines: o.lenient}
}

// reportIngest prints the streaming scan accounting, mirroring the batch
// path's "loaded N events" line and lenient-skip warnings.
func reportIngest(ing *pipeline.IngestStats) {
	if ing == nil {
		return
	}
	if ing.SkippedLines > 0 {
		fmt.Fprintf(os.Stderr, "warning: skipped %d malformed line(s) across shards (first: %s)\n",
			ing.SkippedLines, ing.FirstSkipped)
	}
	fmt.Printf("scanned %d events from %d shard(s)\n", ing.Records, ing.Shards)
}

// readLogFile loads one proxy log file, optionally skipping up to lenient
// malformed lines.
func readLogFile(path string, lenient int) ([]*proxylog.Record, error) {
	if lenient > 0 {
		recs, stats, err := proxylog.ReadAllLenient(path, lenient)
		if stats.SkippedLines > 0 {
			fmt.Fprintf(os.Stderr, "warning: %s: skipped %d malformed line(s) (first: %s)\n",
				path, stats.SkippedLines, stats.FirstSkipped)
		}
		return recs, err
	}
	return proxylog.ReadAll(path)
}

// runOnce is the single-shot mode: one pipeline run over every log file,
// cancellable by SIGINT/SIGTERM.
func runOnce(entries []string, corr *proxylog.Correlator, cfg pipeline.Config, statePath string, ing ingestOpts, top int, allowDegraded bool, casesOut string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var store *novelty.Store
	if statePath != "" {
		var err error
		store, err = novelty.Load(statePath)
		if err != nil {
			return err
		}
	}
	cfg.Novelty = store

	var res *pipeline.Result
	if ing.shards > 0 {
		// Sharded streaming path: plan byte-range splits and let the
		// ingest layer scan them in parallel; records are never
		// materialized.
		shards, err := ingest.PlanShards(entries, ing.shards)
		if err != nil {
			return err
		}
		fmt.Printf("streaming %d file(s) as %d shard(s)\n", len(entries), len(shards))
		res, err = pipeline.RunStream(ctx, shards, corr, cfg, ing.streamOptions())
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("%w: %v", errInterrupted, err)
			}
			return err
		}
		reportIngest(res.Ingest)
	} else {
		var records []*proxylog.Record
		for _, path := range entries {
			recs, err := readLogFile(path, ing.lenient)
			if err != nil {
				return fmt.Errorf("read %s: %w", path, err)
			}
			records = append(records, recs...)
		}
		fmt.Printf("loaded %d events from %d file(s)\n", len(records), len(entries))

		var err error
		res, err = pipeline.Run(ctx, records, corr, cfg)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("%w: %v", errInterrupted, err)
			}
			return err
		}
	}
	printReport(res, top)

	if store != nil {
		if err := store.Save(statePath); err != nil {
			return err
		}
		d, p := store.Size()
		fmt.Printf("\nnovelty store saved to %s (%d destinations, %d pairs)\n", statePath, d, p)
	}
	if casesOut != "" {
		if err := exportCases(res, casesOut); err != nil {
			return err
		}
	}
	if res.Degraded && !allowDegraded {
		return errDegraded
	}
	return nil
}

// runOps is the operations mode: each log file is one day, ingested
// through the crash-safe ops loop. The first SIGINT/SIGTERM drains (the
// in-flight day finishes and commits); a second aborts the in-flight day,
// which rolls back and can be re-ingested.
func runOps(stateDir string, entries []string, corr *proxylog.Correlator, cfg pipeline.Config, ing ingestOpts, top int, allowDegraded bool) error {
	loop, err := opsloop.New(opsloop.Config{
		StateDir: stateDir,
		Pipeline: cfg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "warning: "+format+"\n", args...)
		},
	}, corr)
	if err != nil {
		return err
	}
	if rec := loop.Recovery(); len(rec.Warnings) > 0 {
		fmt.Fprintf(os.Stderr, "warning: recovery repaired %d issue(s); quarantined: %d\n",
			len(rec.Warnings), len(rec.Quarantined))
	}
	fmt.Printf("ops loop at %s: %d day(s) already committed\n", stateDir, loop.DaysIngested())
	// Each sorted file is one day; skip the ones a previous (possibly
	// interrupted) invocation already committed so a rerun resumes at the
	// first unprocessed day instead of re-ingesting from the start.
	if done := loop.DaysIngested(); done > 0 {
		if done >= len(entries) {
			fmt.Printf("nothing to do: all %d file(s) already committed\n", len(entries))
			return nil
		}
		entries = entries[done:]
	}

	ctx, hardCancel := context.WithCancelCause(context.Background())
	defer hardCancel(nil)
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	var draining atomic.Bool
	go func() {
		for range sigc {
			if draining.CompareAndSwap(false, true) {
				fmt.Fprintln(os.Stderr, "baywatch: signal received; committing the in-flight day, then stopping (signal again to abort)")
			} else {
				fmt.Fprintln(os.Stderr, "baywatch: second signal; aborting the in-flight day")
				hardCancel(errInterrupted)
			}
		}
	}()

	degradedDays := 0
	for _, path := range entries {
		if draining.Load() {
			return fmt.Errorf("%w: stopped after day %d (state committed; rerun to continue)",
				errInterrupted, loop.DaysIngested())
		}
		var rep *opsloop.Report
		var err error
		if ing.shards > 0 {
			// Streaming day: the file scans as byte-range shards and the
			// day's history summaries come from the same pass.
			var shards []proxylog.Split
			shards, err = ingest.PlanShards([]string{path}, ing.shards)
			if err != nil {
				return fmt.Errorf("plan %s: %w", path, err)
			}
			rep, err = loop.IngestDayShards(ctx, shards, ing.streamOptions())
		} else {
			var recs []*proxylog.Record
			recs, err = readLogFile(path, ing.lenient)
			if err != nil {
				return fmt.Errorf("read %s: %w", path, err)
			}
			rep, err = loop.IngestDay(ctx, recs)
		}
		if err != nil {
			if errors.Is(err, errInterrupted) || errors.Is(err, context.Canceled) {
				return fmt.Errorf("%w: day %d rolled back; %d day(s) committed (rerun to continue)",
					errInterrupted, loop.DaysIngested()+1, loop.DaysIngested())
			}
			return fmt.Errorf("ingest day %d (%s): %w", loop.DaysIngested()+1, filepath.Base(path), err)
		}
		fmt.Printf("\n==== day %d (%s): %d events ====\n", rep.DaysIngested, filepath.Base(path), rep.Daily.Stats.InputEvents)
		reportIngest(rep.Daily.Ingest)
		printReport(rep.Daily, top)
		if rep.Daily.Degraded {
			degradedDays++
		}
		for _, coarse := range []struct {
			name string
			res  *pipeline.Result
		}{{"weekly", rep.Weekly}, {"monthly", rep.Monthly}} {
			if coarse.res == nil {
				continue
			}
			fmt.Printf("\n-- %s coarse pass --\n", coarse.name)
			printReport(coarse.res, top)
			if coarse.res.Degraded {
				degradedDays++
			}
		}
	}
	fmt.Printf("\nops loop done: %d day(s) committed, history %d pair(s)\n",
		loop.DaysIngested(), loop.HistoryPairs())
	if degradedDays > 0 && !allowDegraded {
		return fmt.Errorf("%d run(s) degraded: %w", degradedDays, errDegraded)
	}
	return nil
}

// printReport prints one pipeline result: degradation warnings, the
// filtering funnel, shed-load accounting and the ranked cases.
func printReport(res *pipeline.Result, top int) {
	if res.Degraded {
		fmt.Fprintf(os.Stderr, "warning: run degraded: %d candidate(s) isolated, %d pair(s) truncated, %d input(s)/%d key(s) failed within budget\n",
			len(res.Errors), res.Stats.TruncatedPairs, res.Stats.FailedInputs, res.Stats.FailedKeys)
		for _, ce := range res.Errors {
			fmt.Fprintf(os.Stderr, "warning:   %s -> %s (%s): %s\n", ce.Source, ce.Destination, ce.Stage, ce.Err)
		}
		for _, tp := range res.Truncated {
			fmt.Fprintf(os.Stderr, "warning:   %s -> %s truncated to %d events (%d dropped)\n",
				tp.Source, tp.Destination, tp.Kept, tp.Dropped)
		}
	}
	if res.Stats.Stalls > 0 {
		fmt.Fprintf(os.Stderr, "warning: watchdog cancelled %d stalled task(s)\n", res.Stats.Stalls)
	}

	s := res.Stats
	fmt.Printf("\nfilter funnel: %d events -> %d pairs -> %d after global WL -> %d after local WL -> %d periodic -> %d after token filter -> %d after novelty -> %d reported\n",
		s.InputEvents, s.Pairs, s.AfterGlobalWhitelist, s.AfterLocalWhitelist,
		s.Periodic, s.AfterTokenFilter, s.AfterNovelty, s.Reported)
	fmt.Printf("timings: extract %s, popularity %s, detect %s, rank %s\n\n",
		s.ExtractTime.Round(time.Millisecond), s.PopularityTime.Round(time.Millisecond),
		s.DetectTime.Round(time.Millisecond), s.RankTime.Round(time.Millisecond))

	fmt.Printf("%-4s %-34s %-18s %-9s %-8s %-9s\n", "rank", "destination", "source", "period", "score", "lm-score")
	fmt.Println(strings.Repeat("-", 88))
	for i, c := range res.Reported {
		if i >= top {
			break
		}
		period := "-"
		if len(c.Detection.Kept) > 0 {
			period = fmt.Sprintf("%.0fs", smallestPeriod(c))
		}
		fmt.Printf("%-4d %-34s %-18s %-9s %-8.3f %-9.1f\n",
			i+1, trim(c.Destination, 34), trim(c.Source, 18), period, c.Score, c.LMScore)
	}
}

// exportCases writes the periodic candidates as feature-vector cases for
// bwtriage.
func exportCases(res *pipeline.Result, casesOut string) error {
	var cases []casefile.Case
	for _, c := range res.Candidates {
		if c.Detection == nil || !c.Detection.Periodic {
			continue
		}
		fc := features.Case{SimilarSources: c.SimilarSources}
		if c.Summary != nil {
			fc.Intervals = c.Summary.IntervalsSeconds()
		}
		if len(c.Detection.Kept) > 0 {
			fc.DominantPeriods = c.Detection.DominantPeriods()
			fc.Power = c.Detection.Kept[0].Power
			fc.ACFScore = c.Detection.Kept[0].ACFScore
		}
		cases = append(cases, casefile.Case{
			ID:          c.Source + "|" + c.Destination,
			Source:      c.Source,
			Destination: c.Destination,
			Features:    append(features.Vector(fc), c.LMScore, c.Popularity),
			Score:       c.Score,
			Periods:     c.Detection.DominantPeriods(),
			LMScore:     c.LMScore,
		})
	}
	if err := casefile.Write(casesOut, cases); err != nil {
		return err
	}
	fmt.Printf("exported %d candidate cases to %s\n", len(cases), casesOut)
	return nil
}

func smallestPeriod(c *pipeline.Candidate) float64 {
	smallest := 1e18
	for _, k := range c.Detection.Kept {
		if p := k.BestPeriod(); p < smallest {
			smallest = p
		}
	}
	return smallest
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-2] + ".."
}
