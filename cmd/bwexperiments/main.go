// Command bwexperiments regenerates the tables and figures of the
// BAYWATCH paper's evaluation on the synthetic substrate.
//
// Usage:
//
//	bwexperiments [-run name] [-quick] [-seed n]
//
// -run selects one experiment (fig2, fig5, fig6, fig7, fig10, fig11,
// table3, table4, table5, table6, scalability, headline) or "all".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"baywatch/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bwexperiments:", err)
		os.Exit(1)
	}
}

func run() error {
	name := flag.String("run", "all", "experiment to run: "+strings.Join(experiments.Names(), ", ")+", or all")
	quick := flag.Bool("quick", false, "reduced trial counts and trace sizes")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	start := time.Now()
	tables, err := experiments.Run(*name, opts)
	if err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
	fmt.Printf("completed %d table(s) in %s\n", len(tables), time.Since(start).Round(time.Millisecond))
	return nil
}
