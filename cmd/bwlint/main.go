// Command bwlint runs the repo's domain-specific analyzers over module
// packages and reports findings in the familiar file:line:col form.
//
// Usage:
//
//	go run ./cmd/bwlint ./...
//	go run ./cmd/bwlint -audit ./...
//	go run ./cmd/bwlint -json -audit ./... > report.json
//
// bwlint exits 0 when the tree is clean, 1 when any analyzer reports a
// finding (or, under -audit, when a stale directive or a budget
// violation is found), and 2 on operational errors (unloadable
// packages, etc.). It is wired into `make lint` and the CI lint job
// next to gofmt and go vet.
//
// -audit additionally verifies the suppression directives themselves:
// every //bw:<name> must still suppress a live diagnostic of the named
// analyzer (stale directives are errors), and the per-directive count
// must stay within the committed DIRECTIVE_BUDGET.txt ceiling — the
// ratchet that only ever goes down. -write-budget regenerates the
// budget file from the current counts after a burn-down.
//
// The suite lives in internal/analysis/...; each analyzer documents its
// invariant and the //bw: directive that records reviewed exceptions.
// See DESIGN.md sections 5e and 5j for the catalogue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"baywatch/internal/analysis"
	"baywatch/internal/analysis/ctxflow"
	"baywatch/internal/analysis/directiveaudit"
	"baywatch/internal/analysis/faultpoint"
	"baywatch/internal/analysis/floatcmp"
	"baywatch/internal/analysis/goleak"
	"baywatch/internal/analysis/guardgo"
	"baywatch/internal/analysis/lockorder"
	"baywatch/internal/analysis/noallocdirective"
	"baywatch/internal/analysis/poolput"
)

var analyzers = []*analysis.Analyzer{
	ctxflow.Analyzer,
	directiveaudit.Analyzer,
	faultpoint.Analyzer,
	floatcmp.Analyzer,
	goleak.Analyzer,
	guardgo.Analyzer,
	lockorder.Analyzer,
	noallocdirective.Analyzer,
	poolput.Analyzer,
}

// report is the -json output shape.
type report struct {
	Findings []string `json:"findings"`
	// Stale and Budget are populated under -audit.
	Stale  []string       `json:"stale_directives,omitempty"`
	Budget []budgetLine   `json:"budget,omitempty"`
	Counts map[string]int `json:"suppression_counts,omitempty"`
	Errors []string       `json:"errors,omitempty"`
}

type budgetLine struct {
	Directive string `json:"directive"`
	Count     int    `json:"count"`
	Max       int    `json:"max"`
	Status    string `json:"status"` // "ok", "ratchet", "violation"
}

func main() {
	audit := flag.Bool("audit", false, "audit //bw: directives for staleness and enforce DIRECTIVE_BUDGET.txt")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout")
	budgetPath := flag.String("budget", "DIRECTIVE_BUDGET.txt", "directive budget file (with -audit)")
	writeBudget := flag.Bool("write-budget", false, "regenerate the budget file from current counts (with -audit)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bwlint [-audit] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	code, err := run(".", patterns, *audit, *jsonOut, *budgetPath, *writeBudget, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bwlint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the suite and renders the report; it returns the process
// exit code (0 clean, 1 findings).
func run(dir string, patterns []string, audit, jsonOut bool, budgetPath string, writeBudget bool, out *os.File) (int, error) {
	metas, err := analysis.GoList(dir, patterns...)
	if err != nil {
		return 0, err
	}
	loader := analysis.NewLoader(metas)
	res, err := analysis.Audit(loader, analyzers)
	if err != nil {
		return 0, err
	}

	rep := report{Findings: res.Findings, Counts: res.Counts}
	failed := len(res.Findings) > 0
	if audit {
		for _, s := range res.Stale {
			rep.Stale = append(rep.Stale, s.String())
		}
		failed = failed || len(res.Stale) > 0

		if writeBudget {
			if err := os.WriteFile(budgetPath, []byte(analysis.Budget{}.Format(res.Counts)), 0o644); err != nil {
				return 0, err
			}
			fmt.Fprintf(os.Stderr, "bwlint: wrote %s\n", budgetPath)
		}
		budget, err := analysis.ParseBudget(budgetPath)
		if err != nil {
			return 0, fmt.Errorf("budget: %w (run bwlint -audit -write-budget to regenerate)", err)
		}
		violations, ratchets := budget.Check(res.Counts)
		failed = failed || len(violations) > 0
		names := make([]string, 0, len(res.Counts))
		for name := range res.Counts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			n := res.Counts[name]
			max, ok := budget[name]
			status := "ok"
			switch {
			case !ok || n > max:
				if !ok {
					max = -1
				}
				status = "violation"
			case n < max:
				status = "ratchet"
			}
			rep.Budget = append(rep.Budget, budgetLine{Directive: name, Count: n, Max: max, Status: status})
		}
		rep.Errors = append(rep.Errors, violations...)
		if !jsonOut {
			for _, s := range rep.Stale {
				fmt.Fprintln(out, s)
			}
			for _, v := range violations {
				fmt.Fprintln(out, "budget:", v)
			}
			for _, r := range ratchets {
				fmt.Fprintln(out, "budget (advisory):", r)
			}
		}
	}

	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 0, err
		}
	} else {
		for _, f := range res.Findings {
			fmt.Fprintln(out, f)
		}
	}
	if failed {
		n := len(res.Findings) + len(rep.Stale) + len(rep.Errors)
		fmt.Fprintf(os.Stderr, "bwlint: %d finding(s)\n", n)
		return 1, nil
	}
	return 0, nil
}
