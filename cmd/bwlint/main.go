// Command bwlint runs the repo's domain-specific analyzers over module
// packages and reports findings in the familiar file:line:col form.
//
// Usage:
//
//	go run ./cmd/bwlint ./...
//	go run ./cmd/bwlint ./internal/dsp ./internal/core
//
// bwlint exits 0 when the tree is clean, 1 when any analyzer reports a
// finding, and 2 on operational errors (unloadable packages, etc.). It is
// wired into `make lint` and the CI lint job next to gofmt and go vet.
//
// The suite lives in internal/analysis/...; each analyzer documents its
// invariant and the //bw: directive that records reviewed exceptions. See
// DESIGN.md section 5e for the full catalogue.
package main

import (
	"flag"
	"fmt"
	"os"

	"baywatch/internal/analysis"
	"baywatch/internal/analysis/faultpoint"
	"baywatch/internal/analysis/floatcmp"
	"baywatch/internal/analysis/guardgo"
	"baywatch/internal/analysis/noallocdirective"
	"baywatch/internal/analysis/poolput"
)

var analyzers = []*analysis.Analyzer{
	faultpoint.Analyzer,
	floatcmp.Analyzer,
	guardgo.Analyzer,
	noallocdirective.Analyzer,
	poolput.Analyzer,
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bwlint [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := lint(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bwlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bwlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// lint loads every package matching patterns under dir and runs the full
// analyzer suite, returning formatted findings.
func lint(dir string, patterns []string) ([]string, error) {
	metas, err := analysis.GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	loader := analysis.NewLoader(metas)
	var findings []string
	for _, path := range loader.Paths() {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		for _, a := range analyzers {
			diags, err := analysis.RunAnalyzer(a, loader, pkg)
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				findings = append(findings, fmt.Sprintf("%s: [%s] %s", loader.Fset.Position(d.Pos), a.Name, d.Message))
			}
		}
	}
	return findings, nil
}
