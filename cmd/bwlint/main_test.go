package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runBwlint invokes run() over a fixture module and returns the exit
// code and rendered output.
func runBwlint(t *testing.T, module string, audit bool) (int, string) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "bwlint-out-*")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	dir := filepath.Join("testdata", module)
	code, err := run(dir, []string{"./..."}, audit, false, filepath.Join(dir, "DIRECTIVE_BUDGET.txt"), false, out)
	if err != nil {
		t.Fatalf("run over %s: %v", module, err)
	}
	if _, err := out.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(out)
	if err != nil {
		t.Fatal(err)
	}
	return code, string(b)
}

// TestAuditFailsOnStaleDirective pins the -audit contract end to end: a
// committed //bw: directive that no longer suppresses a live diagnostic
// makes bwlint exit non-zero and name the site.
func TestAuditFailsOnStaleDirective(t *testing.T) {
	code, out := runBwlint(t, "stalemod", true)
	if code != 1 {
		t.Fatalf("want exit code 1 on a stale directive, got %d\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "is stale") || !strings.Contains(out, "//bw:guarded") {
		t.Errorf("audit output should name the stale directive:\n%s", out)
	}
	if !strings.Contains(out, "pipeline.go:6") {
		t.Errorf("audit output should point at the directive's line:\n%s", out)
	}
}

// TestAuditCleanModule is the control: a live suppression at its
// budgeted ceiling passes the audit.
func TestAuditCleanModule(t *testing.T) {
	code, out := runBwlint(t, "cleanmod", true)
	if code != 0 {
		t.Fatalf("want exit code 0 on a clean module, got %d\noutput:\n%s", code, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("clean audit should be silent, got:\n%s", out)
	}
}

// TestStaleDirectiveIgnoredWithoutAudit verifies staleness is an -audit
// concern: the plain lint run stays green over the same module.
func TestStaleDirectiveIgnoredWithoutAudit(t *testing.T) {
	code, out := runBwlint(t, "stalemod", false)
	if code != 0 {
		t.Fatalf("want exit code 0 without -audit, got %d\noutput:\n%s", code, out)
	}
}
