module stalemod

go 1.22
