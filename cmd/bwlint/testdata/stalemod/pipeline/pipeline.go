// Package pipeline carries a stale suppression: nothing here triggers
// guardgo, so the directive below excuses a diagnostic that no longer
// exists and `bwlint -audit` must fail on it.
package pipeline

//bw:guarded the goroutine this excused is long gone
func idle() {}
