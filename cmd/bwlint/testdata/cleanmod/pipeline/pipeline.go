// Package pipeline is audit-clean: its one suppression still suppresses
// a live guardgo diagnostic and sits exactly at its budgeted ceiling.
package pipeline

func spawn(done chan struct{}) {
	//bw:guarded one-shot close notifier, cannot stall
	go func() { close(done) }()
}
