// Command bwtriage runs the investigation phase over exported candidate
// cases: train the random-forest classifier on analyst-labeled cases,
// classify the rest, and print the review queue ordered by classifier
// uncertainty (the paper's Sect. VI workflow).
//
// Usage:
//
//	# train on labels, classify the rest, save the model:
//	bwtriage -cases cases.json -labels labels.json -save-model rf.gob.gz
//
//	# classify with a previously trained model:
//	bwtriage -cases newcases.json -model rf.gob.gz -top 30
//
// The cases file is produced by `baywatch -cases cases.json`; the labels
// file is JSON mapping case IDs to 0 (benign) or 1 (malicious).
package main

import (
	"flag"
	"fmt"
	"os"

	"baywatch/internal/casefile"
	"baywatch/internal/forest"
	"baywatch/internal/triage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bwtriage:", err)
		os.Exit(1)
	}
}

func run() error {
	casesPath := flag.String("cases", "", "case file from `baywatch -cases` (required)")
	labelsPath := flag.String("labels", "", "JSON labels {caseID: 0|1} to train on")
	modelPath := flag.String("model", "", "load a trained model instead of training")
	saveModel := flag.String("save-model", "", "save the trained model here")
	trees := flag.Int("trees", 200, "forest size when training")
	top := flag.Int("top", 25, "review-queue entries to print")
	flag.Parse()
	if *casesPath == "" {
		flag.Usage()
		return fmt.Errorf("missing -cases")
	}
	if *labelsPath == "" && *modelPath == "" {
		return fmt.Errorf("need -labels (to train) or -model (to classify)")
	}

	cases, err := casefile.Read(*casesPath)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d cases from %s\n", len(cases), *casesPath)

	var rf *forest.Forest
	var labels map[string]int
	if *labelsPath != "" {
		labels, err = casefile.ReadLabels(*labelsPath)
		if err != nil {
			return err
		}
	}

	// Partition cases into the labeled training window and the rest.
	var train []triage.Labeled
	var rest []casefile.Case
	for _, c := range cases {
		if label, ok := labels[c.ID]; ok && *modelPath == "" {
			train = append(train, triage.Labeled{ID: c.ID, Features: c.Features, Label: label})
		} else {
			rest = append(rest, c)
		}
	}

	if *modelPath != "" {
		rf, err = forest.Load(*modelPath)
		if err != nil {
			return err
		}
		fmt.Printf("loaded model from %s (%d trees)\n", *modelPath, rf.Trees())
	} else {
		if len(train) == 0 {
			return fmt.Errorf("no case in %s carries a label from %s", *casesPath, *labelsPath)
		}
		x := make([][]float64, len(train))
		y := make([]int, len(train))
		for i, c := range train {
			x[i] = c.Features
			y[i] = c.Label
		}
		rf, err = forest.Train(x, y, forest.Config{Trees: *trees})
		if err != nil {
			return err
		}
		fmt.Printf("trained %d trees on %d labeled cases (OOB error %.3f)\n",
			rf.Trees(), len(train), rf.OOBError)
		if *saveModel != "" {
			if err := rf.Save(*saveModel); err != nil {
				return err
			}
			fmt.Printf("model saved to %s\n", *saveModel)
		}
	}

	// Classify the remaining cases.
	verdicts := make([]triage.Classified, 0, len(rest))
	byID := make(map[string]casefile.Case, len(rest))
	malicious := 0
	for _, c := range rest {
		p, err := rf.PredictProb(c.Features)
		if err != nil {
			return err
		}
		pred := 0
		if p >= 0.5 {
			pred = 1
		}
		malicious += pred
		verdicts = append(verdicts, triage.Classified{
			ID: c.ID, Prob: p, Predicted: pred,
			Uncertainty: 1 - abs(2*p-1),
		})
		byID[c.ID] = c
	}
	fmt.Printf("classified %d cases: %d malicious, %d benign\n\n",
		len(verdicts), malicious, len(verdicts)-malicious)

	// If the labels file also covers classified cases, report the matrix.
	if labels != nil {
		m, skipped := triage.Evaluate(verdicts, labels)
		if m.Total() > 0 {
			fmt.Printf("against provided labels (%d cases, %d unlabeled): TB=%d FP=%d FN=%d TP=%d\n\n",
				m.Total(), skipped, m.TrueBenign, m.FalsePositive, m.FalseNegative, m.TruePositive)
		}
	}

	fmt.Printf("review queue (most uncertain first):\n")
	fmt.Printf("%-4s %-44s %-8s %-12s %s\n", "#", "case", "p(mal)", "uncertainty", "score")
	for i, v := range triage.ByUncertainty(verdicts) {
		if i >= *top {
			break
		}
		fmt.Printf("%-4d %-44s %-8.2f %-12.2f %.3f\n",
			i+1, clip(v.ID, 44), v.Prob, v.Uncertainty, byID[v.ID].Score)
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-2] + ".."
}
