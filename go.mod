module baywatch

go 1.22
