package baywatch

import (
	"baywatch/internal/synthetic"
	"baywatch/internal/threatintel"
)

// SimulationConfig parameterizes the enterprise traffic simulator that
// substitutes for the paper's proprietary proxy-log corpus.
type SimulationConfig = synthetic.Config

// Infection describes one injected C&C beaconing campaign.
type Infection = synthetic.Infection

// NoiseConfig is the perturbation model of the paper's Fig. 10 synthetic
// evaluation (Gaussian jitter, missing events, added events).
type NoiseConfig = synthetic.NoiseConfig

// Trace is a fully generated data set: records, DHCP leases, ground truth.
type Trace = synthetic.Trace

// IntelOracle simulates the VirusTotal-style reputation portals the paper
// uses to construct evaluation ground truth.
type IntelOracle = threatintel.Oracle

// IntelReport is the oracle's answer for one domain.
type IntelReport = threatintel.Report

// DefaultSimulationConfig returns a laptop-scale configuration with the
// structural properties of the paper's environment (Zipf browsing,
// legitimate periodic services, weekend dips, DHCP churn).
func DefaultSimulationConfig() SimulationConfig {
	return synthetic.DefaultConfig()
}

// Simulate generates an enterprise traffic trace with the configured
// injected infections. Generation is deterministic per seed.
func Simulate(cfg SimulationConfig) (*Trace, error) {
	return synthetic.Generate(cfg)
}

// NewIntelOracle builds a reputation oracle over a trace's ground truth;
// coverage in (0, 1] is the fraction of malicious domains the simulated
// intel community knows about.
func NewIntelOracle(tr *Trace, coverage float64, seed int64) *IntelOracle {
	return threatintel.NewOracle(tr.Truth, coverage, seed)
}
