package baywatch

import (
	"context"

	"baywatch/internal/dnslog"
	"baywatch/internal/mapreduce"
	"baywatch/internal/netflow"
	"baywatch/internal/pipeline"
)

// PairEvent is the source-agnostic observation the extraction job
// consumes: one interaction of one (source, destination) pair. Web-proxy,
// DNS and NetFlow sources all reduce to this shape.
type PairEvent = pipeline.PairEvent

// DNSRecord is one DNS query log entry (resolver view).
type DNSRecord = dnslog.Record

// FlowRecord is one NetFlow-style flow record (perimeter view).
type FlowRecord = netflow.Record

// ExtractFromEvents runs the data-extraction MapReduce job over
// source-agnostic pair events.
func ExtractFromEvents(ctx context.Context, events []PairEvent, scale int64) ([]*ActivitySummary, error) {
	return pipeline.ExtractSummariesFromEvents(ctx, events, scale, mapreduce.JobConfig{})
}

// DNSFromProxyTrace derives the query log an internal resolver would see
// for the given web traffic, with cache suppression: repeat lookups of the
// same name by the same client within ttl seconds produce no query.
func DNSFromProxyTrace(records []*Record, ttl int64) []*DNSRecord {
	return dnslog.FromProxyTrace(records, ttl)
}

// DNSPairEvents converts DNS queries into pair events ((client, qname)
// pairs). corr may be nil to use raw client IPs.
func DNSPairEvents(records []*DNSRecord, corr *Correlator) []PairEvent {
	return dnslog.ToPairEvents(records, corr)
}

// FlowsFromProxyTrace derives the flow records a perimeter exporter would
// produce for the given web traffic (destination IPs synthesized stably
// per domain).
func FlowsFromProxyTrace(records []*Record) []*FlowRecord {
	return netflow.FromProxyTrace(records)
}

// FlowPairEvents converts flows into pair events ((source, dstIP:port)
// pairs). corr may be nil to use raw source IPs.
func FlowPairEvents(records []*FlowRecord, corr *Correlator) []PairEvent {
	return netflow.ToPairEvents(records, corr)
}
