package baywatch_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"baywatch"
)

func beaconTS(rng *rand.Rand, period float64, n int, jitter float64) []int64 {
	out := make([]int64, 0, n)
	t := 0.0
	for i := 0; i < n; i++ {
		out = append(out, int64(t+rng.NormFloat64()*jitter))
		t += period
	}
	return out
}

func TestDetectBeaconingPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res, err := baywatch.DetectBeaconing(beaconTS(rng, 300, 100, 3), 1, baywatch.DefaultDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Periodic {
		t.Fatal("beacon not detected through the public API")
	}
	ps := res.DominantPeriods()
	if len(ps) == 0 || ps[0] < 285 || ps[0] > 315 {
		t.Errorf("periods = %v, want ~300", ps)
	}
	if res.Score() <= 0 || res.Score() > 1 {
		t.Errorf("score = %v", res.Score())
	}
}

func TestDetectBeaconingErrors(t *testing.T) {
	if _, err := baywatch.DetectBeaconing(nil, 1, baywatch.DefaultDetectorConfig()); err == nil {
		t.Error("expected error for empty timestamps")
	}
	if _, err := baywatch.DetectBeaconing([]int64{1}, 0, baywatch.DefaultDetectorConfig()); err == nil {
		t.Error("expected error for zero scale")
	}
}

func TestNewActivitySummary(t *testing.T) {
	as, err := baywatch.NewActivitySummary("mac", "dest.com", []int64{0, 60, 120}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if as.Source != "mac" || as.Destination != "dest.com" || as.EventCount() != 3 {
		t.Errorf("summary = %+v", as)
	}
}

func TestEndToEndPublicAPI(t *testing.T) {
	ctx := context.Background()
	sim := baywatch.DefaultSimulationConfig()
	sim.Days = 2
	sim.Hosts = 50
	sim.CatalogSize = 300
	sim.Infections = []baywatch.Infection{{
		Family:  "Zbot",
		Clients: 2,
		Period:  180,
		Noise:   baywatch.NoiseConfig{JitterSigma: 3, MissProb: 0.05},
	}}
	trace, err := baywatch.Simulate(sim)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := baywatch.NewCorrelator(trace.Leases)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := baywatch.TrainLanguageModel(baywatch.PopularDomains(5000, 42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := baywatch.RunPipeline(ctx, trace.Records, corr, baywatch.PipelineConfig{
		Global: baywatch.NewGlobalWhitelist(trace.Catalog[:50]),
		LM:     lm,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := baywatch.NewIntelOracle(trace, 1, 1)
	foundMal := false
	for _, c := range res.Reported {
		if oracle.Query(c.Destination).Malicious {
			foundMal = true
		}
	}
	if !foundMal {
		t.Error("no malicious destination in the report")
	}

	// Triage over the periodic candidates.
	var train, rest []baywatch.TriageCase
	truth := map[string]int{}
	i := 0
	for _, c := range res.Candidates {
		if c.Detection == nil || !c.Detection.Periodic {
			continue
		}
		label := 0
		if oracle.Query(c.Destination).Malicious {
			label = 1
		}
		id := c.Source + "|" + c.Destination
		tc := baywatch.TriageCase{ID: id, Features: baywatch.CaseFeatures(c), Label: label}
		truth[id] = label
		if i%3 == 0 {
			train = append(train, tc)
		} else {
			rest = append(rest, tc)
		}
		i++
	}
	if len(train) == 0 || len(rest) == 0 {
		t.Skipf("case population too small for triage: %d/%d", len(train), len(rest))
	}
	verdicts, f, err := baywatch.Triage(train, rest, baywatch.ForestConfig{Trees: 30})
	if err != nil {
		t.Fatal(err)
	}
	if f.Trees() != 30 {
		t.Errorf("Trees = %d", f.Trees())
	}
	m, skipped := baywatch.EvaluateTriage(verdicts, truth)
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	if m.Total() != len(rest) {
		t.Errorf("matrix total = %d, want %d", m.Total(), len(rest))
	}
	curve := baywatch.FNReductionCurve(verdicts, truth)
	if len(curve) != len(verdicts)+1 {
		t.Errorf("curve length = %d", len(curve))
	}
	ordered := baywatch.ByUncertainty(verdicts)
	for i := 1; i < len(ordered); i++ {
		if ordered[i-1].Uncertainty < ordered[i].Uncertainty {
			t.Fatal("uncertainty order broken")
		}
	}
}

func TestFeatureNamesIsCopy(t *testing.T) {
	names := baywatch.FeatureNames()
	if len(names) == 0 {
		t.Fatal("no feature names")
	}
	names[0] = "mutated"
	if baywatch.FeatureNames()[0] == "mutated" {
		t.Error("FeatureNames exposes internal state")
	}
}

func TestNoveltyStoreFacade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "n.json")
	s := baywatch.NewNoveltyStore()
	s.MarkReported("a", "b.com")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := baywatch.LoadNoveltyStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.IsNovel("a", "b.com") {
		t.Error("loaded store lost state")
	}
}

func TestExtractAndRescaleFacade(t *testing.T) {
	ctx := context.Background()
	recs := []*baywatch.Record{
		{Timestamp: 0, ClientIP: "10.0.0.1", Host: "x.com", Path: "/a"},
		{Timestamp: 3600, ClientIP: "10.0.0.1", Host: "x.com", Path: "/a"},
		{Timestamp: 7200, ClientIP: "10.0.0.1", Host: "x.com", Path: "/a"},
	}
	sums, err := baywatch.ExtractActivitySummaries(ctx, recs, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 {
		t.Fatalf("summaries = %d", len(sums))
	}
	merged, err := baywatch.RescaleAndMerge(ctx, sums, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 || merged[0].Scale != 60 || merged[0].EventCount() != 3 {
		t.Errorf("merged = %+v", merged[0])
	}
}

func TestPopularDomainsFacade(t *testing.T) {
	ds := baywatch.PopularDomains(100, 1)
	if len(ds) != 100 {
		t.Fatalf("len = %d", len(ds))
	}
	if ds[0] != "google.com" {
		t.Errorf("head of ranking = %q, want google.com", ds[0])
	}
}

func TestProxyLogRoundTripFacade(t *testing.T) {
	// The Record alias formats/parses through the proxylog implementation;
	// verify the public path works end to end via files from the traffic
	// simulator (what bwgen writes, baywatch reads).
	sim := baywatch.DefaultSimulationConfig()
	sim.Days = 1
	sim.Hosts = 10
	sim.CatalogSize = 100
	sim.BrowsingSessionsPerHostDay = 2
	sim.UpdateServices = 2
	sim.NicheServices = 2
	trace, err := baywatch.Simulate(sim)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Records) == 0 {
		t.Fatal("no records")
	}
	r := trace.Records[0]
	if r.Host == "" || r.ClientIP == "" {
		t.Errorf("record incomplete: %+v", r)
	}
}
