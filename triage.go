package baywatch

import (
	"baywatch/internal/features"
	"baywatch/internal/forest"
	"baywatch/internal/triage"
)

// TriageCase is a candidate case with a ground-truth label (0 benign,
// 1 malicious) used to bootstrap the triage classifier.
type TriageCase = triage.Labeled

// TriageVerdict is the classifier's outcome for one candidate: predicted
// class, malicious probability, and ensemble uncertainty.
type TriageVerdict = triage.Classified

// ConfusionMatrix is the 2x2 evaluation of triage predictions against
// ground truth (the paper's Table IV).
type ConfusionMatrix = triage.ConfusionMatrix

// ForestConfig parameterizes the random-forest classifier; the zero value
// reproduces the paper's prototype (200 trees).
type ForestConfig = forest.Config

// RandomForest is the trained ensemble.
type RandomForest = forest.Forest

// FeatureNames lists the Table II feature vector components, in the order
// CaseFeatures produces them.
func FeatureNames() []string {
	out := make([]string, len(features.Names))
	copy(out, features.Names)
	return out
}

// CaseFeatures extracts the classifier feature vector from a pipeline
// candidate: the paper's Table II features plus the language-model score
// and destination popularity the earlier filter stages produce (Sect. VI
// notes the filters "generate a rich set of features" for the classifier).
func CaseFeatures(c *Candidate) []float64 {
	fc := features.Case{
		SimilarSources: c.SimilarSources,
	}
	if c.Summary != nil {
		fc.Intervals = c.Summary.IntervalsSeconds()
	}
	if c.Detection != nil && len(c.Detection.Kept) > 0 {
		fc.DominantPeriods = c.Detection.DominantPeriods()
		fc.Power = c.Detection.Kept[0].Power
		fc.ACFScore = c.Detection.Kept[0].ACFScore
	}
	return append(features.Vector(fc), c.LMScore, c.Popularity)
}

// Triage trains a random forest on the labeled window and classifies the
// candidate cases, implementing the paper's bootstrap investigation
// workflow (label a month, classify five).
func Triage(train []TriageCase, candidates []TriageCase, cfg ForestConfig) ([]TriageVerdict, *RandomForest, error) {
	return triage.Triage(train, candidates, cfg)
}

// EvaluateTriage builds the confusion matrix of verdicts against the
// ground-truth labels keyed by case ID; the second return value counts
// cases without a label.
func EvaluateTriage(verdicts []TriageVerdict, truth map[string]int) (ConfusionMatrix, int) {
	return triage.Evaluate(verdicts, truth)
}

// ByUncertainty orders verdicts most-uncertain first — the manual review
// order of the paper's Fig. 11.
func ByUncertainty(verdicts []TriageVerdict) []TriageVerdict {
	return triage.ByUncertainty(verdicts)
}

// FNReductionCurve reproduces Fig. 11: entry k is the number of false
// negatives remaining after examining the k most uncertain cases.
func FNReductionCurve(verdicts []TriageVerdict, truth map[string]int) []int {
	return triage.FNReductionCurve(verdicts, truth)
}
