// Botnethunt reproduces the paper's two case studies on synthetic traces:
// the TDSS bot (Fig. 6: a noisy ~387 s beacon whose spurious periodogram
// candidates are pruned by the minimum-interval rule and the t-test) and
// the Conficker bot (Fig. 7: 7.5 s beacon bursts alternating with ~3 h
// sleeps, exposed as a bimodal interval mixture by the BIC-selected GMM).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"baywatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := baywatch.DefaultDetectorConfig()

	// ---- TDSS-style: steady beacon with gaps and noise ------------------
	rng := rand.New(rand.NewSource(1))
	var tdss []int64
	t := 0.0
	for i := 0; i < 200; i++ {
		if rng.Float64() > 0.1 {
			tdss = append(tdss, int64(t+rng.NormFloat64()*15))
		}
		if rng.Float64() < 0.05 { // occasional extra request
			tdss = append(tdss, int64(t+rng.Float64()*387))
		}
		t += 387
	}
	fmt.Println("== TDSS-style bot (true period 387 s, 10% gaps, extra noise) ==")
	res, err := baywatch.DetectBeaconing(tdss, 1, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %10s %8s %8s %8s  %s\n", "origin", "period[s]", "power", "p-value", "acf", "fate")
	for _, c := range res.Candidates {
		fmt.Printf("%-12s %10.2f %8.2f %8.4f %8.3f  %s\n",
			c.Origin, c.Period, c.Power, c.PValue, c.ACFScore, c.Reason)
	}
	fmt.Printf("=> detected periods: %.1f\n\n", res.DominantPeriods())

	// ---- Conficker-style: burst/sleep alternation ------------------------
	var conficker []int64
	t = 0
	for cycle := 0; cycle < 12; cycle++ {
		for i := 0; i < 16; i++ {
			conficker = append(conficker, int64(t+rng.NormFloat64()*0.3))
			t += 7.5
		}
		t += 10800 // three hours of silence
	}
	fmt.Println("== Conficker-style bot (7.5 s bursts, 3 h sleeps) ==")
	res, err = baywatch.DetectBeaconing(conficker, 1, cfg)
	if err != nil {
		return err
	}
	if res.GMM != nil {
		fmt.Printf("interval mixture selected k=%d components (BICs %v)\n", res.GMM.K, compact(res.GMM.BICs))
		for j := range res.GMM.Best.Means {
			fmt.Printf("  component %d: mean=%8.1fs weight=%.2f\n",
				j+1, res.GMM.Best.Means[j], res.GMM.Best.Weights[j])
		}
	}
	fmt.Printf("=> detected periods: %.1f (both the fast beacon and the sleep cycle)\n", res.DominantPeriods())
	return nil
}

func compact(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x))
	}
	return out
}
