// Enterprise runs the full 8-step BAYWATCH pipeline end to end on a
// simulated corporate network: generate a multi-day proxy-log trace with
// injected infections, correlate sources against DHCP leases, run the
// whitelist / time-series / indication / ranking phases, then bootstrap
// the random-forest triage and check the report against the simulated
// threat-intelligence oracle.
package main

import (
	"context"
	"fmt"
	"log"

	"baywatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// ---- 1. Simulate the enterprise -------------------------------------
	sim := baywatch.DefaultSimulationConfig()
	sim.Days = 3
	sim.Hosts = 120
	sim.Infections = []baywatch.Infection{
		{Family: "Zbot", Clients: 3, Period: 180,
			Noise: baywatch.NoiseConfig{JitterSigma: 3, MissProb: 0.05, AddProb: 0.05}},
		{Family: "ZeroAccess", Clients: 2, Period: 63,
			Noise: baywatch.NoiseConfig{JitterSigma: 1, MissProb: 0.02}},
		{Family: "SleepLoopRAT", Clients: 1, Period: 600,
			Noise: baywatch.NoiseConfig{JitterSigma: 45, AccumulateJitter: true}},
	}
	trace, err := baywatch.Simulate(sim)
	if err != nil {
		return err
	}
	fmt.Printf("simulated %d proxy events over %d days for %d hosts (%d infections)\n",
		len(trace.Records), sim.Days, sim.Hosts, len(sim.Infections))

	// ---- 2. Run the pipeline ---------------------------------------------
	corr, err := baywatch.NewCorrelator(trace.Leases)
	if err != nil {
		return err
	}
	lm, err := baywatch.TrainLanguageModel(baywatch.PopularDomains(20000, 42))
	if err != nil {
		return err
	}
	cfg := baywatch.PipelineConfig{
		Global: baywatch.NewGlobalWhitelist(trace.Catalog[:100]),
		LM:     lm,
	}
	res, err := baywatch.RunPipeline(ctx, trace.Records, corr, cfg)
	if err != nil {
		return err
	}
	s := res.Stats
	fmt.Printf("funnel: %d events -> %d pairs -> %d post-whitelists -> %d periodic -> %d reported\n\n",
		s.InputEvents, s.Pairs, s.AfterLocalWhitelist, s.Periodic, s.Reported)

	oracle := baywatch.NewIntelOracle(trace, 1, 1)
	fmt.Printf("%-4s %-30s %-9s %-7s %s\n", "rank", "destination", "period", "score", "intel")
	for i, c := range res.Reported {
		if i >= 10 {
			break
		}
		verdict := "-"
		if oracle.Query(c.Destination).Malicious {
			verdict = "MALICIOUS (" + trace.Truth[c.Destination].Family + ")"
		}
		period := 0.0
		if len(c.Detection.Kept) > 0 {
			period = c.Detection.Kept[0].BestPeriod()
		}
		fmt.Printf("%-4d %-30s %7.0fs %7.3f %s\n", i+1, clip(c.Destination, 30), period, c.Score, verdict)
	}

	// ---- 3. Bootstrap triage ----------------------------------------------
	// Label a subset "manually" (here: via the oracle) and classify the rest.
	var train, rest []baywatch.TriageCase
	truth := make(map[string]int)
	for i, c := range res.Candidates {
		if c.Detection == nil || !c.Detection.Periodic {
			continue
		}
		label := 0
		if oracle.Query(c.Destination).Malicious {
			label = 1
		}
		id := c.Source + "|" + c.Destination
		tc := baywatch.TriageCase{ID: id, Features: baywatch.CaseFeatures(c), Label: label}
		truth[id] = label
		if i%4 == 0 {
			train = append(train, tc)
		} else {
			rest = append(rest, tc)
		}
	}
	verdicts, forest, err := baywatch.Triage(train, rest, baywatch.ForestConfig{Trees: 200})
	if err != nil {
		return err
	}
	m, _ := baywatch.EvaluateTriage(verdicts, truth)
	fmt.Printf("\ntriage: trained %d trees on %d cases (OOB error %.3f), classified %d\n",
		forest.Trees(), len(train), forest.OOBError, len(rest))
	fmt.Printf("confusion matrix: TB=%d FP=%d FN=%d TP=%d (FPR %.3f)\n",
		m.TrueBenign, m.FalsePositive, m.FalseNegative, m.TruePositive, m.FalsePositiveRate())

	// Review the most uncertain cases first, as an analyst would.
	fmt.Println("\nmost uncertain cases (manual review order):")
	for i, v := range baywatch.ByUncertainty(verdicts) {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-52s p(mal)=%.2f uncertainty=%.2f\n", clip(v.ID, 52), v.Prob, v.Uncertainty)
	}
	return nil
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-2] + ".."
}
