// Multisource demonstrates the paper's discussion-section claim that the
// methodology extends beyond web-proxy logs: the same C&C beacon is
// detected through three different sensor views of one simulated network —
// the proxy log itself, the internal resolver's DNS query log (with cache
// suppression hiding most repeat lookups), and domain-less NetFlow records
// at the perimeter.
package main

import (
	"context"
	"fmt"
	"log"

	"baywatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	sim := baywatch.DefaultSimulationConfig()
	sim.Days = 2
	sim.Hosts = 60
	sim.Infections = []baywatch.Infection{{
		Family:  "Zbot",
		Clients: 2,
		Period:  600,
		Noise:   baywatch.NoiseConfig{JitterSigma: 5, MissProb: 0.05},
	}}
	trace, err := baywatch.Simulate(sim)
	if err != nil {
		return err
	}
	var ccDomain string
	for d, tru := range trace.Truth {
		if tru.Family == "Zbot" {
			ccDomain = d
		}
	}
	fmt.Printf("simulated %d proxy events; C&C domain: %s (600 s beacon)\n\n", len(trace.Records), ccDomain)

	det := baywatch.NewDetector(baywatch.DefaultDetectorConfig())
	report := func(view string, events []baywatch.PairEvent, match func(dest string) bool) error {
		sums, err := baywatch.ExtractFromEvents(ctx, events, 1)
		if err != nil {
			return err
		}
		for _, as := range sums {
			if !match(as.Destination) {
				continue
			}
			res, err := det.Detect(as)
			if err != nil {
				return err
			}
			status := "not periodic"
			if res.Periodic {
				status = fmt.Sprintf("beaconing, period %.0fs", res.DominantPeriods()[0])
			}
			fmt.Printf("%-10s pair %s -> %s: %d events, %s\n",
				view, as.Source, as.Destination, as.EventCount(), status)
		}
		return nil
	}

	// --- proxy view --------------------------------------------------------
	var proxyEvents []baywatch.PairEvent
	for _, r := range trace.Records {
		proxyEvents = append(proxyEvents, baywatch.PairEvent{
			Source: r.ClientIP, Destination: r.Host, Timestamp: r.Timestamp, Path: r.Path,
		})
	}
	if err := report("proxy", proxyEvents, func(d string) bool { return d == ccDomain }); err != nil {
		return err
	}

	// --- DNS view: 300 s resolver cache hides half the beacon lookups ------
	queries := baywatch.DNSFromProxyTrace(trace.Records, 300)
	fmt.Printf("\nDNS view: %d queries after cache suppression (from %d requests)\n",
		len(queries), len(trace.Records))
	if err := report("dns", baywatch.DNSPairEvents(queries, nil), func(d string) bool { return d == ccDomain }); err != nil {
		return err
	}

	// --- NetFlow view: no domain names, only IP:port pairs -----------------
	flows := baywatch.FlowsFromProxyTrace(trace.Records)
	ccIPPort := ""
	for i, f := range flows {
		if trace.Records[i].Host == ccDomain {
			ccIPPort = f.DstIP + ":80"
			break
		}
	}
	fmt.Printf("\nNetFlow view: C&C hides behind %s\n", ccIPPort)
	if err := report("netflow", baywatch.FlowPairEvents(flows, nil), func(d string) bool { return d == ccIPPort }); err != nil {
		return err
	}

	fmt.Println("\nthe same timing signal surfaces in every view; only the identifier changes")
	return nil
}
