// Dailyops simulates BAYWATCH's deployment mode: the pipeline runs once
// per day with a persistent novelty store (so a case is only reported the
// first time it appears), while activity summaries accumulate and are
// rescaled/merged for a coarser weekly analysis that catches slow beacons
// a single day cannot expose — the paper's multi-time-scale operation
// (Sect. X: daily, weekly, monthly).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"baywatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// A slow beacon (4 h period) yields only ~6 events per day — below the
	// detector's sampling threshold — but a week of merged history exposes
	// it.
	sim := baywatch.DefaultSimulationConfig()
	sim.Days = 7
	sim.Hosts = 80
	sim.Infections = []baywatch.Infection{
		{Family: "FastBot", Clients: 2, Period: 120,
			Noise: baywatch.NoiseConfig{JitterSigma: 2, MissProb: 0.05}},
		{Family: "SlowAPT", Clients: 1, Period: 4 * 3600,
			Noise: baywatch.NoiseConfig{JitterSigma: 60}},
	}
	trace, err := baywatch.Simulate(sim)
	if err != nil {
		return err
	}
	corr, err := baywatch.NewCorrelator(trace.Leases)
	if err != nil {
		return err
	}
	lm, err := baywatch.TrainLanguageModel(baywatch.PopularDomains(20000, 42))
	if err != nil {
		return err
	}

	stateDir, err := os.MkdirTemp("", "baywatch-dailyops")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stateDir)
	statePath := filepath.Join(stateDir, "novelty.json")

	var slowDomain string
	for d, tru := range trace.Truth {
		if tru.Family == "SlowAPT" {
			slowDomain = d
		}
	}

	// ---- daily runs with a persistent novelty store ----------------------
	start := trace.Records[0].Timestamp
	var weekSummaries []*baywatch.ActivitySummary
	for day := 0; day < sim.Days; day++ {
		var dayRecords []*baywatch.Record
		for _, r := range trace.Records {
			if int((r.Timestamp-start)/86400) == day {
				dayRecords = append(dayRecords, r)
			}
		}
		if len(dayRecords) == 0 {
			continue
		}
		store, err := baywatch.LoadNoveltyStore(statePath)
		if err != nil {
			return err
		}
		cfg := baywatch.PipelineConfig{
			Global:  baywatch.NewGlobalWhitelist(trace.Catalog[:100]),
			LM:      lm,
			Novelty: store,
		}
		res, err := baywatch.RunPipeline(ctx, dayRecords, corr, cfg)
		if err != nil {
			return err
		}
		if err := store.Save(statePath); err != nil {
			return err
		}
		fmt.Printf("day %d: %6d events, %4d pairs, %2d new cases reported\n",
			day+1, len(dayRecords), res.Stats.Pairs, res.Stats.Reported)

		// Keep the day's summaries for the weekly coarse pass.
		sums, err := baywatch.ExtractActivitySummaries(ctx, dayRecords, corr, 1)
		if err != nil {
			return err
		}
		weekSummaries = append(weekSummaries, sums...)
	}

	// ---- weekly rescale/merge pass ---------------------------------------
	merged, err := baywatch.RescaleAndMerge(ctx, weekSummaries, 60)
	if err != nil {
		return err
	}
	fmt.Printf("\nweekly pass: %d daily summaries merged into %d pair histories at 60 s scale\n",
		len(weekSummaries), len(merged))

	det := baywatch.NewDetector(baywatch.DefaultDetectorConfig())
	for _, as := range merged {
		if as.Destination != slowDomain {
			continue
		}
		res, err := det.Detect(as)
		if err != nil {
			return err
		}
		fmt.Printf("slow C&C %s: %d events over the week, periodic=%v",
			as.Destination, as.EventCount(), res.Periodic)
		if res.Periodic {
			fmt.Printf(", period=%.0fs (true: 14400s)", res.DominantPeriods()[0])
		}
		fmt.Println(" — invisible to any single daily run")
	}
	return nil
}
