// Quickstart: ask "is this communication pair beaconing?" for three
// request-timestamp sequences — a clean beacon, a jittery real-world-style
// beacon, and random browsing traffic.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"baywatch"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A bot checking in every 5 minutes, with a little network jitter and
	// the occasional missed beacon.
	var beacon []int64
	t := 0.0
	for i := 0; i < 200; i++ {
		if rng.Float64() > 0.05 { // 5% of beacons unobserved
			beacon = append(beacon, int64(t+rng.NormFloat64()*3))
		}
		t += 300
	}

	// A user browsing: bursts of requests separated by random pauses.
	var browsing []int64
	t = 0
	for s := 0; s < 40; s++ {
		for i := 0; i < 5+rng.Intn(10); i++ {
			t += rng.Float64() * 10
			browsing = append(browsing, int64(t))
		}
		t += 600 + rng.ExpFloat64()*2000
	}

	cfg := baywatch.DefaultDetectorConfig()
	for _, tc := range []struct {
		name string
		ts   []int64
	}{
		{"c2-beacon (300 s period)", beacon},
		{"user browsing", browsing},
	} {
		res, err := baywatch.DetectBeaconing(tc.ts, 1, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s events=%-4d periodic=%-5v", tc.name, res.EventCount, res.Periodic)
		if res.Periodic {
			fmt.Printf(" periods=%.1fs score=%.2f", res.DominantPeriods()[0], res.Score())
		}
		fmt.Println()

		// The full diagnostic trail is available per candidate.
		for _, c := range res.Candidates {
			fmt.Printf("    candidate %-12s period=%8.2fs power=%7.2f p=%.3f acf=%.3f -> %s\n",
				c.Origin, c.Period, c.Power, c.PValue, c.ACFScore, c.Reason)
		}
	}
}
