package baywatch

import (
	"context"

	"baywatch/internal/corpus"
	"baywatch/internal/guard"
	"baywatch/internal/langmodel"
	"baywatch/internal/mapreduce"
	"baywatch/internal/novelty"
	"baywatch/internal/pipeline"
	"baywatch/internal/proxylog"
	"baywatch/internal/whitelist"
)

// PipelineConfig assembles the 8-step pipeline's components; see the
// pipeline package documentation for the filter-by-filter breakdown.
type PipelineConfig = pipeline.Config

// PipelineResult is a pipeline run's output: the ranked report plus the
// full candidate set and the filtering funnel statistics.
type PipelineResult = pipeline.Result

// Candidate is one communication pair as it moved through the pipeline.
type Candidate = pipeline.Candidate

// FilterStage identifies which filter suppressed a candidate.
type FilterStage = pipeline.FilterStage

// CandidateError records one candidate that failed in-flight during a
// degraded run; see PipelineResult.Errors.
type CandidateError = pipeline.CandidateError

// GuardConfig bounds a run's time and memory: per-stage and per-candidate
// deadlines, a stall watchdog, admission control and per-pair event caps.
// The zero value disables every bound; see PipelineConfig.Guard.
type GuardConfig = guard.Config

// TruncatedPair records one communication pair whose events were shed to
// the per-pair cap during a run; see PipelineResult.Truncated.
type TruncatedPair = pipeline.TruncatedPair

// Record is one proxy-log entry (BlueCoat-style access log record).
type Record = proxylog.Record

// Lease is one DHCP lease event used for IP-to-MAC correlation.
type Lease = proxylog.Lease

// Correlator resolves (IP, timestamp) to device MACs over a lease set.
type Correlator = proxylog.Correlator

// LanguageModel is the 3-gram Kneser-Ney character model scoring domain
// names.
type LanguageModel = langmodel.Model

// GlobalWhitelist is the popular-domain whitelist with suffix matching.
type GlobalWhitelist = whitelist.Global

// NoveltyStore is the persistent change-detection state of the novelty
// filter.
type NoveltyStore = novelty.Store

// RunPipeline executes the full 8-step BAYWATCH pipeline over proxy-log
// records. corr may be nil, in which case raw client IPs identify
// sources. The config's LM field is required; build one with
// TrainLanguageModel.
func RunPipeline(ctx context.Context, records []*Record, corr *Correlator, cfg PipelineConfig) (*PipelineResult, error) {
	return pipeline.Run(ctx, records, corr, cfg)
}

// TrainLanguageModel trains the domain-name language model on a corpus of
// popular domain names (most popular first).
func TrainLanguageModel(domains []string) (*LanguageModel, error) {
	return langmodel.Train(domains)
}

// PopularDomains deterministically generates a plausible popular-domain
// ranking (most popular first); it substitutes for the Alexa top list the
// paper trains on and whitelists with.
func PopularDomains(n int, seed int64) []string {
	return corpus.PopularDomains(n, seed)
}

// NewGlobalWhitelist builds the global whitelist from a domain list,
// typically the head of the popular-domain ranking.
func NewGlobalWhitelist(domains []string) *GlobalWhitelist {
	return whitelist.NewGlobal(domains)
}

// NewNoveltyStore returns an empty novelty store; use LoadNoveltyStore to
// resume accumulated state.
func NewNoveltyStore() *NoveltyStore {
	return novelty.NewStore()
}

// LoadNoveltyStore reads a previously saved novelty store; a missing file
// yields an empty store.
func LoadNoveltyStore(path string) (*NoveltyStore, error) {
	return novelty.Load(path)
}

// NewCorrelator indexes DHCP leases for IP-to-MAC resolution.
func NewCorrelator(leases []Lease) (*Correlator, error) {
	return proxylog.NewCorrelator(leases)
}

// ReadProxyLog parses every record in a (optionally gzip-compressed) log
// file written in the repository's BlueCoat-style format.
func ReadProxyLog(path string) ([]*Record, error) {
	return proxylog.ReadAll(path)
}

// ReadStats reports what a lenient proxy-log read skipped.
type ReadStats = proxylog.ReadStats

// ReadProxyLogLenient parses a proxy log skipping up to maxBad malformed
// lines (maxBad <= 0 means unlimited) instead of aborting; the stats
// report how much was skipped. I/O-level failures (e.g. a truncated gzip
// stream) still error: they mean lost data, not a dirty line.
func ReadProxyLogLenient(path string, maxBad int) ([]*Record, ReadStats, error) {
	return proxylog.ReadAllLenient(path, maxBad)
}

// ExtractActivitySummaries runs the data-extraction MapReduce job: it
// groups proxy-log records into per-communication-pair request histories
// at the given time scale (seconds per bucket). corr may be nil to use raw
// client IPs as source identities.
func ExtractActivitySummaries(ctx context.Context, records []*Record, corr *Correlator, scale int64) ([]*ActivitySummary, error) {
	return pipeline.ExtractSummaries(ctx, records, corr, scale, mapreduce.JobConfig{})
}

// RescaleAndMerge runs the rescaling/merging MapReduce job: summaries are
// rescaled to the (coarser) newScale and histories of the same pair are
// merged, enabling weekly/monthly analysis without reprocessing raw logs.
func RescaleAndMerge(ctx context.Context, summaries []*ActivitySummary, newScale int64) ([]*ActivitySummary, error) {
	return pipeline.RescaleAndMerge(ctx, summaries, newScale, mapreduce.JobConfig{})
}
