// Package baywatch is a from-scratch Go implementation of BAYWATCH, the
// robust beaconing detection methodology of Hu et al. (IEEE/IFIP DSN 2016):
// an 8-step filtering pipeline that mines web-proxy logs for the periodic
// callback traffic ("beaconing") of malware command-and-control channels
// and produces a prioritized list of suspicious communication pairs.
//
// The package exposes three layers:
//
//   - the core periodicity detection algorithm (Detect / Detector):
//     periodogram analysis with a permutation-derived power threshold,
//     statistical pruning (minimum-interval rule, one-sample t-test,
//     Gaussian-mixture interval clustering), and autocorrelation
//     verification with period refinement;
//
//   - the full 8-step pipeline (RunPipeline): global and local whitelists,
//     the detection algorithm, URL-token / novelty / language-model
//     filters, and weighted ranking, executed over an in-process
//     MapReduce engine mirroring the paper's Hadoop implementation;
//
//   - the investigation workflow (Triage...): Table II feature extraction
//     and a random-forest classifier with uncertainty-ordered review.
//
// The repository also ships the evaluation substrate the paper relies on:
// a deterministic enterprise-traffic simulator with injected infections
// (standing in for the proprietary 35 TB proxy-log corpus), a DHCP lease
// correlator, a popular-domain corpus generator (standing in for the Alexa
// ranking), and a simulated threat-intelligence oracle. See DESIGN.md for
// the full inventory and EXPERIMENTS.md for the paper-vs-measured results.
package baywatch

import (
	"fmt"

	"baywatch/internal/core"
	"baywatch/internal/timeseries"
)

// DetectorConfig parameterizes the periodicity detection algorithm
// (Sect. IV of the paper). See DefaultDetectorConfig for the paper's
// parameterization.
type DetectorConfig = core.Config

// DetectionResult is the outcome of analyzing one communication pair's
// request history.
type DetectionResult = core.Result

// CandidatePeriod is one candidate period with the statistics gathered
// across the three detection steps.
type CandidatePeriod = core.Candidate

// Detector runs the three-step periodicity detection; it is safe for
// concurrent use.
type Detector = core.Detector

// ActivitySummary is the per-pair request history (source, destination,
// time scale, first timestamp, interval list) that flows through the
// pipeline.
type ActivitySummary = timeseries.ActivitySummary

// DefaultDetectorConfig returns the parameterization used throughout the
// paper's evaluation: m = 20 permutations at 95% confidence, α = 5%.
func DefaultDetectorConfig() DetectorConfig {
	return core.DefaultConfig()
}

// NewDetector builds a Detector, replacing out-of-range config fields with
// defaults.
func NewDetector(cfg DetectorConfig) *Detector {
	return core.NewDetector(cfg)
}

// DetectBeaconing analyzes a single request-timestamp sequence (Unix
// seconds, any order) at the given time scale (seconds per bucket; use 1
// for the paper's finest granularity). It is the quickest way to ask "is
// this communication pair beaconing?":
//
//	res, err := baywatch.DetectBeaconing(timestamps, 1, baywatch.DefaultDetectorConfig())
//	if res.Periodic { fmt.Println(res.DominantPeriods()) }
func DetectBeaconing(timestamps []int64, scale int64, cfg DetectorConfig) (*DetectionResult, error) {
	as, err := timeseries.FromTimestamps("src", "dst", timestamps, scale)
	if err != nil {
		return nil, fmt.Errorf("baywatch: %w", err)
	}
	return core.NewDetector(cfg).Detect(as)
}

// NewActivitySummary builds an ActivitySummary from raw request
// timestamps for the given pair at the given scale.
func NewActivitySummary(source, destination string, timestamps []int64, scale int64) (*ActivitySummary, error) {
	return timeseries.FromTimestamps(source, destination, timestamps, scale)
}
