// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact, delegating to internal/experiments with the
// Quick profile), plus microbenchmarks of the core algorithm and ablation
// benchmarks for the design choices called out in DESIGN.md.
//
// Run them all with:
//
//	go test -bench=. -benchmem
package baywatch_test

import (
	"fmt"
	"math/rand"
	"testing"

	"baywatch"
	"baywatch/internal/core"
	"baywatch/internal/experiments"
	"baywatch/internal/synthetic"
	"baywatch/internal/timeseries"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(name, experiments.Options{Quick: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

func BenchmarkFig2_ChallengeTraces(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFig5_PermutationThreshold(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig6_PruningTDSS(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7_GMMMultiPeriod(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig10_NoiseTolerance(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11_UncertaintyOrdering(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkTable3_DataVolumes(b *testing.B)        { benchExperiment(b, "table3") }
func BenchmarkTable4_ConfusionMatrix(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkTable5_FiveMonthCases(b *testing.B)     { benchExperiment(b, "table5") }
func BenchmarkTable6_TenDayTop5(b *testing.B)         { benchExperiment(b, "table6") }

func BenchmarkScalability_PairsVsRuntime(b *testing.B) { benchExperiment(b, "scalability") }
func BenchmarkHeadline_TopRankedPrecision(b *testing.B) {
	benchExperiment(b, "headline")
}

// ---- core microbenchmarks --------------------------------------------------

func beaconSummary(b *testing.B, period float64, n int, noise synthetic.NoiseConfig) *baywatch.ActivitySummary {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	ts := synthetic.BeaconTimestamps(rng, 0, period, n, noise)
	as, err := timeseries.FromTimestamps("src", "dst", ts, 1)
	if err != nil {
		b.Fatal(err)
	}
	return as
}

func BenchmarkDetect_CleanBeacon(b *testing.B) {
	as := beaconSummary(b, 60, 300, synthetic.NoiseConfig{})
	det := baywatch.NewDetector(baywatch.DefaultDetectorConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(as); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetect_NoisyBeacon(b *testing.B) {
	as := beaconSummary(b, 60, 300, synthetic.NoiseConfig{JitterSigma: 5, MissProb: 0.2, AddProb: 0.2})
	det := baywatch.NewDetector(baywatch.DefaultDetectorConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(as); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetect_LongWindow(b *testing.B) {
	// A week of hourly beaconing at 1 s resolution: exercises the
	// decimation path.
	as := beaconSummary(b, 3600, 168, synthetic.NoiseConfig{JitterSigma: 30})
	det := baywatch.NewDetector(baywatch.DefaultDetectorConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(as); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablation benchmarks ----------------------------------------------------
//
// Each ablation reports detection outcomes under a modified configuration
// through per-iteration metrics, quantifying the contribution of one
// design choice.

// ablationWorkload builds a mixed set of periodic and aperiodic summaries.
func ablationWorkload(b *testing.B) []*baywatch.ActivitySummary {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	var out []*baywatch.ActivitySummary
	// Beacons with varying noise.
	for i := 0; i < 10; i++ {
		ts := synthetic.BeaconTimestamps(rng, 0, 60+float64(i*30), 200,
			synthetic.NoiseConfig{JitterSigma: float64(i), MissProb: 0.05 * float64(i%3), AccumulateJitter: i%2 == 0})
		as, err := timeseries.FromTimestamps("s", fmt.Sprintf("beacon%d", i), ts, 1)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, as)
	}
	// Aperiodic traffic.
	for i := 0; i < 10; i++ {
		var ts []int64
		t := 0.0
		for j := 0; j < 200; j++ {
			t += rng.ExpFloat64() * 120
			ts = append(ts, int64(t))
		}
		as, err := timeseries.FromTimestamps("s", fmt.Sprintf("poisson%d", i), ts, 1)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, as)
	}
	return out
}

func runAblation(b *testing.B, cfg baywatch.DetectorConfig) {
	b.Helper()
	workload := ablationWorkload(b)
	det := baywatch.NewDetector(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	var truePos, falsePos int
	for i := 0; i < b.N; i++ {
		truePos, falsePos = 0, 0
		for _, as := range workload {
			res, err := det.Detect(as)
			if err != nil {
				b.Fatal(err)
			}
			if res.Periodic {
				if as.Destination[0] == 'b' {
					truePos++
				} else {
					falsePos++
				}
			}
		}
	}
	b.ReportMetric(float64(truePos), "detected/10")
	b.ReportMetric(float64(falsePos), "falsepos/10")
}

func BenchmarkAblation_Baseline(b *testing.B) {
	runAblation(b, baywatch.DefaultDetectorConfig())
}

func BenchmarkAblation_PermutationCount(b *testing.B) {
	for _, m := range []int{5, 20, 100} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			cfg := baywatch.DefaultDetectorConfig()
			cfg.Permutations = m
			runAblation(b, cfg)
		})
	}
}

func BenchmarkAblation_NoTTest(b *testing.B) {
	// Alpha ~ 0 disables the t-test pruning (nothing is ever rejected).
	cfg := baywatch.DefaultDetectorConfig()
	cfg.Alpha = 1e-12
	runAblation(b, cfg)
}

func BenchmarkAblation_NoACFGate(b *testing.B) {
	// A near-zero ACF threshold weakens verification.
	cfg := baywatch.DefaultDetectorConfig()
	cfg.MinACFScore = 1e-9
	runAblation(b, cfg)
}

func BenchmarkAblation_NoGMM(b *testing.B) {
	// A single mixture component disables multi-period discovery.
	cfg := baywatch.DefaultDetectorConfig()
	cfg.GMMMaxComponents = 1
	runAblation(b, cfg)
}

func BenchmarkAblation_CoarseAnalysis(b *testing.B) {
	for _, bins := range []int{1024, 8192, 65536} {
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			cfg := baywatch.DefaultDetectorConfig()
			cfg.MaxAnalysisBins = bins
			runAblation(b, cfg)
		})
	}
}

func BenchmarkAblation_SingleTreeVsForest(b *testing.B) {
	for _, trees := range []int{1, 200} {
		b.Run(fmt.Sprintf("trees=%d", trees), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			var train []baywatch.TriageCase
			for i := 0; i < 300; i++ {
				label := i % 2
				c := float64(label) * 2
				train = append(train, baywatch.TriageCase{
					ID:       fmt.Sprint(i),
					Features: []float64{c + rng.NormFloat64()*1.5, rng.NormFloat64(), c + rng.NormFloat64()*3},
					Label:    label,
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := baywatch.Triage(train, train[:50], baywatch.ForestConfig{Trees: trees, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectSeries_Permutations isolates the permutation-threshold
// cost, the dominant term of per-pair detection.
func BenchmarkDetectSeries_Permutations(b *testing.B) {
	series := make([]float64, 8192)
	for i := 0; i < len(series); i += 60 {
		series[i] = 1
	}
	intervals := make([]float64, 135)
	for i := range intervals {
		intervals[i] = 60
	}
	det := core.NewDetector(core.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.DetectSeries(series, 1, intervals); err != nil {
			b.Fatal(err)
		}
	}
}
